"""The scenario registry: named, parameterised, lazily materialised families.

A *family* wraps one instance-builder function from :mod:`repro.workloads`
(or a composition of them) behind a uniform interface:

* ``describe()`` exposes the parameter names, defaults and docstring,
* ``build(spec)`` validates a :class:`~repro.scenarios.spec.ScenarioSpec`
  against the builder's signature and materialises the
  :class:`~repro.core.instance.ProblemInstance`,
* ``smoke_params`` names a tiny configuration every family must be able to
  build in well under a second (``repro scenarios smoke`` /
  ``make scenarios-smoke`` runs one algorithm through each).

Validation is eager and specific: unknown family names raise
:class:`UnknownScenarioError` listing the registered names, unknown parameters
raise :class:`ScenarioParamError` listing the family's accepted ones — a plan
file typo fails at compile time, not after an hour of sweeping.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Union

from ..core.instance import ProblemInstance
from .spec import ScenarioSpec

__all__ = [
    "ScenarioFamily",
    "ScenarioError",
    "UnknownScenarioError",
    "ScenarioParamError",
    "register",
    "family",
    "names",
    "describe",
    "build",
    "validate",
]


class ScenarioError(Exception):
    """Base class for scenario registry errors."""


class UnknownScenarioError(ScenarioError, KeyError):
    """A spec referenced a family name that is not registered."""

    def __str__(self) -> str:  # KeyError quotes its args; keep the message readable
        return self.args[0] if self.args else ""


class ScenarioParamError(ScenarioError, ValueError):
    """A spec carried parameters the family's builder does not accept."""


@dataclass(frozen=True)
class ScenarioFamily:
    """One registered scenario family (see module docstring)."""

    name: str
    builder: Callable[..., ProblemInstance]
    description: str
    defaults: Dict = field(default_factory=dict)
    smoke_params: Dict = field(default_factory=dict)
    tags: tuple = ()

    # --------------------------------------------------------------- validate
    def validate_params(self, params: Mapping) -> None:
        unknown = sorted(set(params) - set(self.defaults))
        if unknown:
            raise ScenarioParamError(
                f"scenario family {self.name!r} got unknown parameter(s) {unknown}; "
                f"accepted: {sorted(self.defaults)}"
            )

    def validate_spec(self, spec: ScenarioSpec) -> None:
        """Check a spec's params, seed and event plan against this family (raises)."""
        self.validate_params(spec.params)
        if spec.seed is not None and "seed" not in self.defaults:
            raise ScenarioParamError(
                f"scenario family {self.name!r} is deterministic (no 'seed' parameter) "
                f"but the spec carries seed={spec.seed}"
            )
        if spec.events is not None and "events" not in self.defaults:
            raise ScenarioParamError(
                f"scenario family {self.name!r} is not event-aware (no 'events' parameter) "
                f"but the spec carries an event plan of {len(spec.events)} event(s); "
                "use a chaos-* family or inject the plan at serve time (--chaos)"
            )

    # ---------------------------------------------------------------- realise
    def build(self, spec: ScenarioSpec) -> ProblemInstance:
        self.validate_spec(spec)
        kwargs = dict(spec.params)
        if spec.seed is not None:
            kwargs["seed"] = spec.seed
        if spec.events is not None:
            kwargs["events"] = spec.events
        instance = self.builder(**kwargs)
        if not isinstance(instance, ProblemInstance):
            raise TypeError(
                f"builder of scenario family {self.name!r} returned {type(instance)!r}, "
                "expected ProblemInstance"
            )
        return instance

    def describe(self) -> dict:
        """JSON-safe metadata: name, description, params with defaults, tags."""
        return {
            "name": self.name,
            "description": self.description,
            "params": dict(self.defaults),
            "smoke_params": dict(self.smoke_params),
            "tags": list(self.tags),
        }


_REGISTRY: Dict[str, ScenarioFamily] = {}


def _introspect_defaults(builder: Callable) -> Dict:
    defaults: Dict = {}
    for pname, param in inspect.signature(builder).parameters.items():
        if param.kind in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD):
            raise TypeError(
                f"scenario builders must have a concrete signature, {builder!r} uses *{pname}"
            )
        defaults[pname] = None if param.default is inspect.Parameter.empty else param.default
    return defaults


def register(
    name: str,
    builder: Optional[Callable[..., ProblemInstance]] = None,
    *,
    description: Optional[str] = None,
    smoke_params: Optional[Mapping] = None,
    tags: tuple = (),
) -> Callable:
    """Register a builder as the scenario family ``name``.

    Usable directly (``register("x", fn, ...)``) or as a decorator::

        @register("diurnal-cpu-gpu", smoke_params={"T": 8}, tags=("thm8",))
        def _diurnal_cpu_gpu(T=48, ..., seed=1): ...

    Parameter names and defaults are introspected from the builder's
    signature; the first docstring paragraph becomes the description unless an
    explicit one is given.  Re-registering a name raises — families are
    process-wide constants.
    """

    def _register(fn: Callable[..., ProblemInstance]) -> Callable[..., ProblemInstance]:
        if name in _REGISTRY:
            raise ValueError(f"scenario family {name!r} is already registered")
        doc = description
        if doc is None:
            doc = inspect.getdoc(fn) or ""
            doc = doc.split("\n\n", 1)[0].replace("\n", " ").strip()
        entry = ScenarioFamily(
            name=name,
            builder=fn,
            description=doc,
            defaults=_introspect_defaults(fn),
            smoke_params=dict(smoke_params or {}),
            tags=tuple(tags),
        )
        entry.validate_params(entry.smoke_params)
        _REGISTRY[name] = entry
        return fn

    if builder is not None:
        return _register(builder)
    return _register


def family(name: str) -> ScenarioFamily:
    """Look up a registered family (raises :class:`UnknownScenarioError`)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(
            f"unknown scenario family {name!r} (registered: {', '.join(names())})"
        ) from None


def names() -> List[str]:
    """All registered family names, sorted."""
    return sorted(_REGISTRY)


def describe(name: str) -> dict:
    """JSON-safe metadata of one family."""
    return family(name).describe()


def validate(spec: Union[str, Mapping, ScenarioSpec]) -> ScenarioSpec:
    """Parse + validate a spec against the registry without building it."""
    spec = ScenarioSpec.parse(spec)
    family(spec.name).validate_spec(spec)
    return spec


def build(spec: Union[str, Mapping, ScenarioSpec], **params) -> ProblemInstance:
    """Materialise a scenario: ``build("homogeneous", T=24, seed=3)``.

    Accepts a family name, a spec dict or a :class:`ScenarioSpec`; keyword
    ``params`` (including ``seed``) are merged on top.  This is the single
    entry point every consumer — CLI, sweep-engine worker shards, benchmarks —
    funnels through.
    """
    spec = ScenarioSpec.parse(spec)
    if params:
        seed = params.pop("seed", None)
        spec = spec.with_overrides(seed=seed, **params)
    return family(spec.name).build(spec)
