"""Declarative scenario descriptions.

A :class:`ScenarioSpec` is the *address* of a problem instance: a registered
family name, a plain-dict parameter override and a seed.  It carries no numpy
arrays, no cost functions and no :class:`~repro.core.instance.ProblemInstance`
— materialisation happens lazily through the registry
(:func:`repro.scenarios.build`), so specs are cheap to construct, trivially
picklable, JSON round-trippable, and safe to ship across process boundaries:
worker shards of the sweep engine rebuild the instance locally instead of
receiving megabytes of pickled tensors.

``ScenarioSpec.parse`` accepts the three spellings used throughout the CLI
and plan files::

    "diurnal-cpu-gpu"                                  # family, all defaults
    {"scenario": "homogeneous", "params": {"T": 24}, "seed": 3}
    ScenarioSpec("big-fleet", {"m_max": 500}, seed=1)  # passed through

A spec may additionally carry a chaos **event plan** (``events``): a
JSON-safe fault schedule (see :mod:`repro.scenarios.events`) that
event-aware families (the ``chaos-*`` set) bake into the instance they
build.  Like params, the plan is canonicalised at construction and
round-trips losslessly through JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Union

__all__ = ["ScenarioSpec"]

_JSON_SCALARS = (str, int, float, bool, type(None))


def _canonical_json_value(value, path: str):
    """Validate a param value as JSON-safe and return its canonical form.

    Tuples become lists (what they deserialise back to), so a spec always
    equals its own JSON round-trip.
    """
    if isinstance(value, _JSON_SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical_json_value(item, f"{path}[{i}]") for i, item in enumerate(value)]
    if isinstance(value, Mapping):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(f"scenario param key {key!r} at {path} must be a string")
            out[key] = _canonical_json_value(item, f"{path}.{key}")
        return out
    raise TypeError(
        f"scenario param {path} = {value!r} is not JSON-safe "
        "(allowed: str, int, float, bool, None, lists, dicts)"
    )


@dataclass(frozen=True)
class ScenarioSpec:
    """Name + params + seed: the serialisable identity of one instance.

    ``name`` refers to a family registered in :mod:`repro.scenarios.registry`;
    ``params`` overrides a subset of the family's defaults (JSON-safe values
    only, enforced at construction); ``seed`` feeds the family's unified
    seeding convention (one scenario seed, spawned sub-streams for trace and
    fleet randomness).  ``seed=None`` keeps the family's default seed so that
    registered specs stay bit-reproducible.
    """

    name: str
    params: Dict = field(default_factory=dict)
    seed: Optional[int] = None
    #: Optional chaos event plan (canonical JSON form; ``None`` = no events).
    events: Optional[list] = None

    def __post_init__(self):
        if not isinstance(self.name, str) or not self.name:
            raise TypeError(f"scenario name must be a non-empty string, got {self.name!r}")
        params = _canonical_json_value(dict(self.params or {}), self.name)
        object.__setattr__(self, "params", params)
        if self.seed is not None:
            if not isinstance(self.seed, int) or isinstance(self.seed, bool):
                raise TypeError(f"scenario seed must be an int or None, got {self.seed!r}")
        if self.events is not None:
            # canonicalise through the event-plan layer so malformed plans
            # fail here (spec construction), not at materialisation time
            from .events import EventPlan

            plan = EventPlan.parse(self.events)
            object.__setattr__(self, "events", plan.to_dict()["events"])

    def event_plan(self):
        """The spec's events as an :class:`~repro.scenarios.events.EventPlan`
        (``None`` when the spec carries no events)."""
        if self.events is None:
            return None
        from .events import EventPlan

        return EventPlan.parse(self.events)

    # ---------------------------------------------------------- (de)serialise
    def to_dict(self) -> dict:
        """Flat JSON-safe representation (inverse of :meth:`from_dict`)."""
        payload: dict = {"scenario": self.name}
        if self.params:
            payload["params"] = dict(self.params)
        if self.seed is not None:
            payload["seed"] = self.seed
        if self.events is not None:
            payload["events"] = [dict(e) for e in self.events]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ScenarioSpec":
        payload = dict(payload)
        name = payload.pop("scenario", None) or payload.pop("name", None)
        if name is None:
            raise ValueError(f"scenario dict needs a 'scenario' (or 'name') key, got {sorted(payload)}")
        params = payload.pop("params", {}) or {}
        seed = payload.pop("seed", None)
        events = payload.pop("events", None)
        if payload:
            raise ValueError(
                f"unknown scenario-spec keys {sorted(payload)} "
                "(expected: scenario/name, params, seed, events)"
            )
        return cls(name=name, params=params, seed=seed, events=events)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def parse(cls, entry: Union[str, Mapping, "ScenarioSpec"]) -> "ScenarioSpec":
        """Normalise a name / dict / spec into a :class:`ScenarioSpec`."""
        if isinstance(entry, ScenarioSpec):
            return entry
        if isinstance(entry, str):
            return cls(name=entry)
        if isinstance(entry, Mapping):
            return cls.from_dict(entry)
        raise TypeError(f"cannot parse scenario spec from {entry!r}")

    # -------------------------------------------------------------- utilities
    def with_overrides(self, seed: Optional[int] = None, events=None, **params) -> "ScenarioSpec":
        """A copy with ``params`` merged in (and optionally a new seed / event plan)."""
        merged = dict(self.params)
        merged.update(params)
        return ScenarioSpec(
            self.name,
            merged,
            self.seed if seed is None else seed,
            self.events if events is None else events,
        )

    def key(self) -> str:
        """A stable human-readable identity string (used in reports and logs)."""
        parts = [self.name]
        if self.params:
            parts.append(",".join(f"{k}={self.params[k]}" for k in sorted(self.params)))
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        if self.events is not None:
            parts.append(f"events={len(self.events)}")
        return "[" + " ".join(parts) + "]"

    def __eq__(self, other) -> bool:
        if not isinstance(other, ScenarioSpec):
            return NotImplemented
        return (self.name, self.params, self.seed, self.events) == (
            other.name,
            other.params,
            other.seed,
            other.events,
        )

    def __hash__(self) -> int:
        # coarse on purpose: params is a dict and numerically equal specs
        # (T=1 vs T=1.0) must hash alike; equality does the fine-grained work
        return hash((self.name, self.seed))
