"""The plan compiler: ``{scenarios, algorithms, offline}`` → :class:`SweepPlan`.

A *selection* is a plain JSON-safe mapping (typically loaded from a
``plan.json`` file or assembled by the CLI) describing a whole sweep
declaratively::

    {
      "scenarios": [
        "homogeneous",
        {"scenario": "diurnal-cpu-gpu", "params": {"T": 24}, "seed": 3}
      ],
      "params": {"T": 24},          // merged into every scenario
      "seeds": [0, 1, 2],           // optional: one spec per (scenario, seed)
      "algorithms": ["A", {"kind": "C", "params": {"epsilon": 0.5}}],
      "offline": [{"solver": "optimal"}],
      "jobs": 4,
      "checkpoint_every": null,
      "compute_optimal": true
    }

``compile_plan`` validates every scenario against the registry (unknown names
and parameters fail *here*, before any work is scheduled) and returns a
:class:`~repro.exp.engine.SweepPlan` whose ``scenarios`` tuple holds only
:class:`~repro.scenarios.spec.ScenarioSpec` objects — the engine materialises
the instances lazily, inside worker shards for process-sharded plans, so no
:class:`~repro.core.instance.ProblemInstance` is ever pickled across a process
boundary and any run is reproducible anywhere from the plan file alone.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Optional, Sequence, Tuple, Union

from ..exp.engine import AlgorithmSpec, OfflineSpec, SweepPlan
from .registry import validate
from .spec import ScenarioSpec

__all__ = ["compile_plan", "load_plan", "scenario_specs"]

_SELECTION_KEYS = {
    "scenarios",
    "params",
    "seeds",
    "algorithms",
    "offline",
    "jobs",
    "checkpoint_every",
    "compute_optimal",
}


def scenario_specs(
    entries: Sequence,
    params: Optional[Mapping] = None,
    seeds: Optional[Sequence[int]] = None,
) -> Tuple[ScenarioSpec, ...]:
    """Normalise scenario entries into validated specs.

    ``params`` is merged into every entry (entry-level params win); ``seeds``
    expands entries *without* an explicit seed to one spec per
    ``(scenario, seed)`` pair — the standard shape of a multi-seed sweep.  An
    entry that pins its own seed keeps it and is not expanded, so a plan can
    mix seed-swept families with fixed reference scenarios.
    """
    seeds = _check_seeds(seeds)
    specs = []
    for entry in entries:
        spec = ScenarioSpec.parse(entry)
        if params:
            merged = dict(params)
            merged.update(spec.params)
            spec = ScenarioSpec(spec.name, merged, spec.seed, spec.events)
        if seeds and spec.seed is None:
            for seed in seeds:
                specs.append(
                    validate(ScenarioSpec(spec.name, spec.params, int(seed), spec.events))
                )
        else:
            specs.append(validate(spec))
    return tuple(specs)


def _check_seeds(seeds: Optional[Sequence[int]]) -> Optional[list]:
    """Validate a 'seeds' selection: a real sequence of integers or ``None``.

    Strings and bare ints are rejected here (not downstream) so a plan-file
    typo like ``"seeds": "12"`` fails at compile time instead of silently
    sweeping seeds 1 and 2.
    """
    if seeds is None:
        return None
    if isinstance(seeds, (str, bytes)) or not isinstance(seeds, Sequence):
        raise ValueError(f"'seeds' must be a list of integers, got {seeds!r}")
    out = []
    for seed in seeds:
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ValueError(f"'seeds' entries must be integers, got {seed!r}")
        out.append(seed)
    return out


def _algorithm_spec(entry) -> AlgorithmSpec:
    if isinstance(entry, AlgorithmSpec):
        return entry
    if isinstance(entry, str):
        return AlgorithmSpec(kind=entry)
    if isinstance(entry, Mapping):
        entry = dict(entry)
        kind = entry.pop("kind", None)
        if kind is None:
            raise ValueError(f"algorithm dict needs a 'kind' key, got {sorted(entry)}")
        known = {"label", "params", "bound"}
        unknown = sorted(set(entry) - known)
        if unknown:
            raise ValueError(f"unknown algorithm-spec keys {unknown} (expected: kind, {sorted(known)})")
        return AlgorithmSpec(
            kind=kind,
            label=entry.get("label"),
            params=dict(entry.get("params") or {}),
            bound=entry.get("bound", "theory"),
        )
    raise TypeError(f"cannot parse algorithm spec from {entry!r}")


def _offline_spec(entry) -> OfflineSpec:
    if isinstance(entry, OfflineSpec):
        return entry
    if isinstance(entry, str):
        return OfflineSpec(solver=entry)
    if isinstance(entry, Mapping):
        fields = {"solver", "label", "epsilon", "gamma", "return_schedule", "checkpoint_every", "value_dtype"}
        unknown = sorted(set(entry) - fields)
        if unknown:
            raise ValueError(f"unknown offline-spec keys {unknown} (expected: {sorted(fields)})")
        return OfflineSpec(**dict(entry))
    raise TypeError(f"cannot parse offline spec from {entry!r}")


def compile_plan(selection: Mapping, **overrides) -> SweepPlan:
    """Compile a declarative selection into an executable :class:`SweepPlan`.

    Keyword ``overrides`` replace top-level selection keys (the CLI uses this
    for ``--jobs`` etc.).  Every scenario, algorithm and offline entry is
    validated eagerly; the returned plan carries only specs — instances are
    built lazily by :func:`repro.exp.run_plan`, inside worker shards when the
    plan is process-sharded.
    """
    selection = dict(selection)
    selection.update({k: v for k, v in overrides.items() if v is not None})
    unknown = sorted(set(selection) - _SELECTION_KEYS)
    if unknown:
        raise ValueError(
            f"unknown plan keys {unknown} (expected a subset of {sorted(_SELECTION_KEYS)})"
        )
    entries = selection.get("scenarios") or ()
    if not entries:
        raise ValueError("a plan needs at least one scenario")
    specs = scenario_specs(
        entries, params=selection.get("params"), seeds=selection.get("seeds")
    )
    algorithms = tuple(_algorithm_spec(a) for a in selection.get("algorithms") or ())
    offline = tuple(_offline_spec(o) for o in selection.get("offline") or ())
    compute_optimal = selection.get("compute_optimal")
    return SweepPlan(
        instances=(),
        scenarios=specs,
        algorithms=algorithms,
        offline=offline,
        # explicit nulls in a plan file mean "the default", same as omission
        compute_optimal=True if compute_optimal is None else bool(compute_optimal),
        jobs=int(selection.get("jobs") or 1),
        checkpoint_every=selection.get("checkpoint_every"),
    )


def load_plan(path: Union[str, Path], **overrides) -> SweepPlan:
    """Compile a ``plan.json`` file (see module docstring for the schema)."""
    path = Path(path)
    try:
        selection = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"plan file {path} is not valid JSON: {exc}") from exc
    if not isinstance(selection, Mapping):
        raise ValueError(f"plan file {path} must contain a JSON object, got {type(selection).__name__}")
    return compile_plan(selection, **overrides)
