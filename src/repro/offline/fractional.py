"""Fractional relaxations and lower bounds for general convex operating costs.

The discrete optimum is hard to certify for large instances (the exact DP is
exponential in ``d`` over the fleet sizes).  This module computes *lower
bounds* on the optimal cost via linear programming:

1. every convex operating-cost function ``f_{t,j}`` is replaced by the maximum
   of a small set of *tangent lines* (supporting hyperplanes).  Since tangents
   under-estimate a convex function, the relaxed problem is a relaxation, and
2. the integrality requirement on the server counts is dropped (fractional
   setting of Lin et al. / Bansal et al.).

The resulting LP value is therefore ``<= C(X*)`` for the discrete optimum
``X*``; the gap shrinks as the number of tangents grows.  Benchmarks use this
bound to compute conservative (i.e. over-estimated) empirical competitive
ratios on instances that are too large for the exact DP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import optimize, sparse

from ..core.instance import ProblemInstance

__all__ = ["FractionalBound", "convex_lower_bound"]


@dataclass(frozen=True, eq=False)
class FractionalBound:
    """Lower bound on the optimal total cost together with the fractional solution."""

    value: float
    servers: Optional[np.ndarray]
    loads: Optional[np.ndarray]
    status: str

    @property
    def is_valid(self) -> bool:
        return math.isfinite(self.value)


def convex_lower_bound(
    instance: ProblemInstance,
    n_tangents: int = 6,
) -> FractionalBound:
    """Tangent-based fractional LP lower bound on ``C(X*)``.

    Variables per slot and type: fractional active servers ``x_{t,j}``, power-up
    amounts ``u_{t,j}`` and dispatched volumes ``w_{t,j}``; an epigraph variable
    ``e_{t,j}`` dominates the per-type operating cost via ``n_tangents`` tangent
    cuts of ``phi(x, w) = x * f(w / x)``.  ``phi`` is jointly convex (it is the
    perspective of ``f``), and each tangent is taken at a sample point
    ``(x0, w0)`` with gradient ``(f(s) - s f'(s), f'(s))`` for ``s = w0/x0``,
    which under-estimates ``phi`` everywhere — hence the LP optimum is a valid
    lower bound.
    """
    T, d = instance.T, instance.d
    if T == 0:
        return FractionalBound(value=0.0, servers=np.zeros((0, d)), loads=np.zeros((0, d)), status="optimal")
    beta = instance.beta
    zmax = instance.zmax
    n_vars = 4 * T * d  # x, u, w, e

    def xi(t, j):
        return t * 4 * d + j

    def ui(t, j):
        return t * 4 * d + d + j

    def wi(t, j):
        return t * 4 * d + 2 * d + j

    def ei(t, j):
        return t * 4 * d + 3 * d + j

    c = np.zeros(n_vars)
    lb = np.zeros(n_vars)
    ub = np.full(n_vars, np.inf)

    for t in range(T):
        counts = instance.counts_at(t)
        for j in range(d):
            c[ui(t, j)] = beta[j]
            c[ei(t, j)] = 1.0
            ub[xi(t, j)] = counts[j]
            ub[ui(t, j)] = counts[j]
            ub[wi(t, j)] = instance.demand[t]

    rows, cols, data = [], [], []
    b_lower, b_upper = [], []
    row = 0

    def add_row(entries, lo, hi):
        nonlocal row
        for col, val in entries:
            rows.append(row)
            cols.append(col)
            data.append(float(val))
        b_lower.append(lo)
        b_upper.append(hi)
        row += 1

    for t in range(T):
        lam = float(instance.demand[t])
        counts = instance.counts_at(t)
        functions = instance.cost_row(t)
        # power-up counters
        for j in range(d):
            entries = [(ui(t, j), 1.0), (xi(t, j), -1.0)]
            if t > 0:
                entries.append((xi(t - 1, j), 1.0))
            add_row(entries, 0.0, np.inf)
        # demand coverage
        add_row([(wi(t, j), 1.0) for j in range(d)], lam, lam)
        # capacity coupling
        for j in range(d):
            cap = zmax[j] if np.isfinite(zmax[j]) else max(lam, 1.0)
            add_row([(wi(t, j), 1.0), (xi(t, j), -float(cap))], -np.inf, 0.0)
        # tangent cuts for the perspective function e >= x*(f(s) - s f'(s)) + w*f'(s)
        for j in range(d):
            f = functions[j]
            cap = zmax[j] if np.isfinite(zmax[j]) else max(lam, 1.0)
            sample_loads = np.linspace(0.0, cap, max(2, n_tangents))
            for s in sample_loads:
                fs = float(f.value(s))
                dfs = float(f.derivative(s))
                # e_{t,j} - (fs - s*dfs) * x_{t,j} - dfs * w_{t,j} >= 0
                add_row(
                    [(ei(t, j), 1.0), (xi(t, j), -(fs - s * dfs)), (wi(t, j), -dfs)],
                    0.0,
                    np.inf,
                )

    A = sparse.csc_matrix((data, (rows, cols)), shape=(row, n_vars))
    constraints = optimize.LinearConstraint(A, np.array(b_lower), np.array(b_upper))
    bounds = optimize.Bounds(lb, ub)
    res = optimize.milp(
        c=c,
        constraints=constraints,
        bounds=bounds,
        integrality=np.zeros(n_vars),
        options={"presolve": True},
    )
    if not res.success:
        return FractionalBound(value=-math.inf, servers=None, loads=None, status=str(res.message))
    servers = np.array([[res.x[xi(t, j)] for j in range(d)] for t in range(T)])
    loads = np.array([[res.x[wi(t, j)] for j in range(d)] for t in range(T)])
    return FractionalBound(value=float(res.fun), servers=servers, loads=loads, status="optimal")
