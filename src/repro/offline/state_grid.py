"""State grids: the sets of server configurations considered by the offline solvers.

The optimal offline algorithm of Section 4.1 works on the *full* grid
``M = prod_j {0, 1, ..., m_j}``.  The (1+eps)-approximation of Section 4.2
restricts each dimension to the geometrically spaced subset

``M^gamma_j = {0, m_j} ∪ {⌊gamma^k⌋ ∈ M_j} ∪ {⌈gamma^k⌉ ∈ M_j}``
          ``= {0, 1, ⌊gamma⌋, ⌈gamma⌉, ⌊gamma²⌋, ⌈gamma²⌉, ..., m_j}``,

whose size is ``O(log_gamma m_j)`` and in which the ratio of two consecutive
values never exceeds ``gamma``.  Section 4.3 further allows the per-type server
counts ``m_{t,j}`` to change over time, which simply means a different grid per
slot.

A :class:`StateGrid` is the per-dimension list of admissible values together
with helpers to enumerate configurations and to snap arbitrary configurations
onto the grid (needed by the rounding construction of Theorem 16).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.instance import ProblemInstance

__all__ = ["StateGrid", "geometric_levels", "grid_for_slot"]


def geometric_levels(m: int, gamma: float) -> np.ndarray:
    """The reduced state set ``M^gamma_j`` for a dimension with ``m`` servers.

    Contains 0, ``m`` and both roundings of every power of ``gamma`` below ``m``.
    Consecutive non-zero values are either adjacent integers (the range where the
    grid cannot be refined any further) or within a multiplicative factor of
    ``gamma`` of each other — the spacing property used in the proof of
    Theorem 16.
    """
    if m < 0:
        raise ValueError("m must be non-negative")
    if gamma <= 1.0:
        raise ValueError("gamma must be > 1")
    values = {0, int(m)}
    if m >= 1:
        values.add(1)
        power = gamma
        # iterate k = 1, 2, ... while gamma^k is below m
        while power < m:
            values.add(int(np.floor(power)))
            values.add(int(np.ceil(power)))
            power *= gamma
    return np.array(sorted(v for v in values if 0 <= v <= m), dtype=int)


class StateGrid:
    """A product grid of admissible server configurations.

    Parameters
    ----------
    values:
        One sorted, duplicate-free integer array per server type.  Each array
        must contain 0 (the all-off configuration must always be reachable,
        because schedules start and end empty).
    """

    def __init__(self, values: Sequence[np.ndarray]):
        vals = []
        for j, v in enumerate(values):
            arr = np.asarray(v, dtype=int)
            if arr.ndim != 1 or arr.size == 0:
                raise ValueError(f"dimension {j}: values must be a non-empty 1-D array")
            arr = np.unique(arr)
            if arr[0] != 0:
                raise ValueError(f"dimension {j}: the value 0 must be part of the grid")
            if np.any(arr < 0):
                raise ValueError(f"dimension {j}: values must be non-negative")
            # frozen so downstream caches (the min-plus relaxation plans) may
            # key on array identity instead of re-serialising the contents
            arr.setflags(write=False)
            vals.append(arr)
        self._values = tuple(vals)
        self._configs: Optional[np.ndarray] = None
        self._key = None
        self._shape = tuple(len(v) for v in self._values)

    # ------------------------------------------------------------- factories
    @classmethod
    def full(cls, counts: Sequence[int]) -> "StateGrid":
        """The complete grid ``prod_j {0..m_j}`` used by the exact algorithm."""
        return cls([np.arange(int(m) + 1) for m in counts])

    @classmethod
    def geometric(cls, counts: Sequence[int], gamma: float) -> "StateGrid":
        """The reduced grid ``M^gamma`` of the (1+eps)-approximation."""
        return cls([geometric_levels(int(m), gamma) for m in counts])

    @classmethod
    def from_epsilon(cls, counts: Sequence[int], epsilon: float) -> "StateGrid":
        """Reduced grid with ``gamma = 1 + eps/2`` so that ``2*gamma - 1 = 1 + eps``."""
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        return cls.geometric(counts, 1.0 + epsilon / 2.0)

    # ------------------------------------------------------------ dimensions
    @property
    def d(self) -> int:
        return len(self._values)

    @property
    def values(self) -> tuple:
        """Per-dimension value arrays."""
        return self._values

    @property
    def shape(self) -> tuple:
        return self._shape

    @property
    def size(self) -> int:
        """Total number of configurations in the grid."""
        return int(np.prod([len(v) for v in self._values], dtype=np.int64))

    def max_values(self) -> np.ndarray:
        """Largest admissible value per dimension."""
        return np.array([v[-1] for v in self._values], dtype=int)

    @property
    def key(self) -> tuple:
        """Hashable fingerprint of the grid (equal grids share a key).

        Used by the batched solvers to group slots whose grids are identical,
        so one :meth:`~repro.dispatch.DispatchSolver.solve_block` call covers
        them all.
        """
        if self._key is None:
            self._key = tuple(v.tobytes() for v in self._values)
        return self._key

    # -------------------------------------------------------------- elements
    def configs(self) -> np.ndarray:
        """All configurations as an ``(size, d)`` integer array in C (row-major) order.

        The ordering matches ``numpy.ndindex`` over :attr:`shape`, i.e. the last
        dimension varies fastest; index ``i`` of the flattened value tensor
        corresponds to row ``i`` of this array.

        The array is built once and cached (it is read-only; callers that need
        a mutable copy must copy explicitly) — the offline DP and the online
        trackers ask for the same enumeration once per slot.
        """
        if self._configs is None:
            mesh = np.meshgrid(*self._values, indexing="ij")
            configs = np.stack([m.reshape(-1) for m in mesh], axis=-1).astype(int)
            configs.setflags(write=False)
            self._configs = configs
        return self._configs

    def config_at(self, index: Sequence[int]) -> np.ndarray:
        """The configuration for a tuple of per-dimension indices."""
        return np.array([self._values[j][index[j]] for j in range(self.d)], dtype=int)

    def index_of(self, config: Sequence[int]) -> tuple:
        """Indices of an exact grid member; raises when ``config`` is off-grid."""
        config = np.asarray(config, dtype=int)
        idx = []
        for j in range(self.d):
            pos = np.searchsorted(self._values[j], config[j])
            if pos >= len(self._values[j]) or self._values[j][pos] != config[j]:
                raise ValueError(f"value {config[j]} not in grid dimension {j}")
            idx.append(int(pos))
        return tuple(idx)

    def contains(self, config: Sequence[int]) -> bool:
        """Whether the configuration lies exactly on the grid."""
        try:
            self.index_of(config)
            return True
        except ValueError:
            return False

    # ---------------------------------------------------------- value lookup
    def ceil_value(self, j: int, value: float) -> int:
        """Smallest grid value of dimension ``j`` that is ``>= value`` (paper: ``N_j`` / ``x_min``)."""
        vals = self._values[j]
        pos = np.searchsorted(vals, value, side="left")
        if pos >= len(vals):
            raise ValueError(f"no grid value >= {value} in dimension {j} (max is {vals[-1]})")
        return int(vals[pos])

    def floor_value(self, j: int, value: float) -> int:
        """Largest grid value of dimension ``j`` that is ``<= value`` (paper: ``x_max``)."""
        vals = self._values[j]
        pos = np.searchsorted(vals, value, side="right") - 1
        if pos < 0:
            raise ValueError(f"no grid value <= {value} in dimension {j}")
        return int(vals[pos])

    def next_value(self, j: int, value: int) -> Optional[int]:
        """The next greater grid value ``N_j(value)`` or ``None`` at the top."""
        vals = self._values[j]
        pos = np.searchsorted(vals, value, side="right")
        if pos >= len(vals):
            return None
        return int(vals[pos])

    def max_ratio(self, j: int) -> float:
        """Largest ratio between consecutive positive values of dimension ``j``."""
        vals = self._values[j]
        positive = vals[vals > 0]
        if len(positive) < 2:
            return 1.0
        return float(np.max(positive[1:] / positive[:-1]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StateGrid(shape={self.shape}, size={self.size})"


def grid_for_slot(
    instance: ProblemInstance,
    t: int,
    gamma: Optional[float] = None,
) -> StateGrid:
    """Build the state grid for slot ``t`` of an instance.

    Uses the slot's available counts ``m_{t,j}`` (which handles the
    time-dependent data-center sizes of Section 4.3 transparently) and, when
    ``gamma`` is given, the geometric reduction ``M^gamma_{t,j}``.

    Grids are memoised on the instance keyed by ``(counts, gamma)``: a
    time-invariant instance builds exactly one grid (and one cached
    ``configs()`` enumeration) no matter how many slots ask for it, and the
    batched solvers recognise the shared object to group slots into a single
    dispatch block.
    """
    counts = instance.counts_at(t)
    cache = instance.__dict__.get("_grid_cache")
    if cache is None:
        cache = {}
        object.__setattr__(instance, "_grid_cache", cache)
    key = (tuple(int(c) for c in counts), None if gamma is None else float(gamma))
    grid = cache.get(key)
    if grid is None:
        grid = StateGrid.full(counts) if gamma is None else StateGrid.geometric(counts, gamma)
        cache[key] = grid
    return grid
