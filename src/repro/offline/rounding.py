"""The X' rounding construction from the proof of Theorem 16 (and Figure 5).

Given an arbitrary (typically optimal) schedule ``X*`` and the reduced grid
``M^gamma``, equation (18) of the paper defines a schedule ``X'`` that only
uses grid values, never violates feasibility, and satisfies the sandwich
invariant

``x*_{t,j}  <=  x'_{t,j}  <=  (2*gamma - 1) * x*_{t,j}``        (equation (19)).

The construction is *lazy*: the number of active servers only changes when the
invariant would otherwise be violated —

* if ``x'_{t-1,j} <= x*_{t,j}``                         → jump up to the smallest grid value ``>= x*_{t,j}``,
* if ``x*_{t,j} < x'_{t-1,j} <= (2*gamma-1) x*_{t,j}``  → keep the previous value,
* if ``(2*gamma-1) x*_{t,j} < x'_{t-1,j}``              → drop to the largest grid value ``<= (2*gamma-1) x*_{t,j}``.

Lemmas 19 and 20 then bound operating and switching cost of ``X'`` by
``(2*gamma - 1)`` times those of ``X*``.  The construction is used to reproduce
Figure 5 and as a constructive witness in the tests of the approximation
guarantee (the shortest path on ``G^gamma`` can only be cheaper than ``X'``).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from .state_grid import StateGrid

__all__ = ["round_schedule_to_grid", "rounding_invariant_holds"]


def round_schedule_to_grid(
    schedule: Schedule,
    grid: StateGrid,
    gamma: float,
    grids_per_slot: Optional[Sequence[StateGrid]] = None,
) -> Schedule:
    """Apply the construction of equation (18) to ``schedule``.

    Parameters
    ----------
    schedule:
        The reference schedule ``X*`` (any feasible schedule works; the theorem
        applies it to an optimal one).
    grid:
        The reduced grid ``M^gamma`` (used for every slot unless
        ``grids_per_slot`` is given).
    gamma:
        The spacing parameter; must match the grid for the invariant to be
        maintainable (``grid.max_ratio(j) <= gamma``).
    grids_per_slot:
        Optional per-slot grids for time-dependent fleet sizes (Section 4.3).

    Returns
    -------
    Schedule
        The rounded schedule ``X'`` whose values all lie on the grid(s).
    """
    if gamma <= 1.0:
        raise ValueError("gamma must be > 1")
    T, d = schedule.T, schedule.d
    factor = 2.0 * gamma - 1.0
    x_prime = np.zeros((T, d), dtype=int)
    prev = np.zeros(d, dtype=int)
    for t in range(T):
        g = grids_per_slot[t] if grids_per_slot is not None else grid
        for j in range(d):
            star = int(schedule.x[t, j])
            upper = factor * star
            if prev[j] <= star:
                new = g.ceil_value(j, star)
            elif prev[j] <= upper:
                new = int(prev[j])
            else:
                new = g.floor_value(j, upper)
            x_prime[t, j] = new
        prev = x_prime[t]
    return Schedule(x_prime)


def rounding_invariant_holds(
    reference: Schedule,
    rounded: Schedule,
    gamma: float,
    tol: float = 1e-9,
) -> bool:
    """Check the sandwich invariant ``x* <= x' <= (2*gamma - 1) * x*`` (equation (19))."""
    factor = 2.0 * gamma - 1.0
    lower_ok = np.all(rounded.x >= reference.x)
    upper_ok = np.all(rounded.x <= factor * reference.x + tol)
    return bool(lower_ok and upper_ok)
