"""The dynamic-programming engine behind the offline algorithms.

Section 4.1 of the paper solves the offline right-sizing problem by a shortest
path in a layered graph: one layer of vertices per time slot, one vertex per
server configuration, power-up/-down edges inside a layer and operating-cost
edges between the two half-layers of a slot.  Because the graph is layered, the
shortest path is a straightforward forward dynamic program over *value tensors*

``V_t[x] = (cheapest cost of serving slots 0..t and ending slot t in configuration x)``

with the recurrence

``V_t[x] = g_t(x) + min_{x'} ( V_{t-1}[x'] + sum_j beta_j (x_j - x'_j)^+ )``

and ``V_{-1} = 0`` concentrated at the empty configuration.  The inner
minimisation is the separable min-plus transition of
:mod:`repro.offline.transitions`.  Since powering down at the end of the
horizon is free, ``OPT = min_x V_{T-1}[x]``.

Memory model
------------
The forward recurrence only ever needs the *previous* value tensor, but
reconstructing the argmin chain classically requires all ``T`` tensors —
``O(T * |M|)`` memory, the scaling wall on long horizons.  The engine therefore
runs a **streaming value pass with checkpointed backtracking** (Hirschberg-style
divide and conquer on the layered graph): the forward pass retains one value
tensor every ``checkpoint_every`` slots, and the backward pass rematerialises
each checkpoint window by re-running the forward DP inside it — ``O(sqrt(T) *
|M|)`` memory at most one extra forward pass of work.  Operating-cost tensors
are likewise produced window by window (:class:`WindowedOperatingCosts`)
instead of all-T upfront, and the dispatch engine is asked not to memoise
per-slot results while streaming.  Small instances (below
:data:`STREAMING_TABLE_BYTES_THRESHOLD` of table history) keep the classic
full-history pass, which costs no recompute; ``keep_tables=True`` forces it and
exposes the tensors.

The same engine serves

* the exact algorithm (full grids, Section 4.1),
* the (1+eps)-approximation (geometric grids ``M^gamma``, Section 4.2),
* time-dependent data-center sizes (per-slot grids, Section 4.3), and
* the incremental prefix-optimum tracker used by the online algorithms
  (:mod:`repro.online.tracker`), which simply keeps the last value tensor and
  feeds one more slot at a time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..core.costs import evaluate_schedule
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..dispatch.allocation import DispatchSolver
from .state_grid import StateGrid, grid_for_slot
from .transitions import (
    make_transition_plan,
    startup_cost_tensor,
    switching_cost_tensor,
    transition,
)

__all__ = [
    "OfflineResult",
    "STREAMING_TABLE_BYTES_THRESHOLD",
    "WindowedOperatingCosts",
    "backtrack_schedule",
    "default_checkpoint_every",
    "operating_cost_tensor",
    "operating_cost_tensors",
    "solve_dp",
]


#: Table-history size (bytes) below which the DP keeps all value tensors even
#: in streaming-eligible calls: rematerialising windows costs up to one extra
#: forward pass, which only pays off once the history is actually large.
STREAMING_TABLE_BYTES_THRESHOLD = 32 * 1024 * 1024


def default_checkpoint_every(
    T: int,
    max_states: int,
    itemsize: int = 8,
    threshold: int = STREAMING_TABLE_BYTES_THRESHOLD,
) -> Optional[int]:
    """Auto-tuned checkpoint window for a ``T``-slot DP over ``max_states`` states.

    Returns ``None`` (keep the full table history — no recompute) while
    ``T * max_states * itemsize`` stays below ``threshold``, else
    ``ceil(sqrt(T))``.  Streaming memory is ``T/k`` checkpoint tensors plus
    ``k`` rematerialised window tensors, which is minimised at ``k = sqrt(T)``
    independent of the grid size — ``prod_j |M_j|`` (and the value dtype, via
    ``itemsize``) only decides *whether* the 2x-forward-FLOPs trade is worth
    taking at all.
    """
    if T <= 2:
        return None
    if T * max(int(max_states), 1) * itemsize <= threshold:
        return None
    return max(1, int(math.ceil(math.sqrt(T))))


@dataclass(frozen=True, eq=False)
class OfflineResult:
    """Result of an offline optimisation run.

    Attributes
    ----------
    schedule:
        The computed schedule (optimal on the given grids), or ``None`` when
        the run was asked for the cost only (``return_schedule=False``).  A
        cost-only result used to carry a zero-length placeholder schedule that
        could silently masquerade as a solved one; ``None`` makes the
        distinction explicit.
    cost:
        The total cost ``C(X)`` with respect to the *original* instance.
    grids:
        The per-slot state grids that were searched.
    value_tables:
        The per-slot DP value tensors (only kept when requested; useful for
        diagnostics and for warm-starting analyses).
    gamma:
        The grid-reduction parameter (``None`` for the exact algorithm).
    checkpoint_every:
        The checkpoint window of the streaming value pass, or ``None`` when
        the run kept the full table history (small instances,
        ``keep_tables=True``).
    """

    schedule: Optional[Schedule]
    cost: float
    grids: tuple
    value_tables: Optional[tuple] = None
    gamma: Optional[float] = None
    checkpoint_every: Optional[int] = None

    @property
    def num_states_explored(self) -> int:
        """Total number of (slot, configuration) pairs examined."""
        return int(sum(g.size for g in self.grids))


def operating_cost_tensor(
    instance: ProblemInstance,
    t: int,
    grid: StateGrid,
    dispatcher: DispatchSolver,
) -> np.ndarray:
    """Evaluate ``g_t(x)`` for every configuration of ``grid`` as a value tensor."""
    configs = grid.configs()
    costs, _ = dispatcher.solve_grid(t, configs)
    return costs.reshape(grid.shape)


def operating_cost_tensors(
    instance: ProblemInstance,
    grids: Sequence[StateGrid],
    dispatcher: DispatchSolver,
) -> List[np.ndarray]:
    """Evaluate ``g_t`` for *all* slots as one batched dispatch computation.

    Slots sharing a grid (always the case for time-invariant fleets, where
    :func:`~repro.offline.state_grid.grid_for_slot` memoisation hands every
    slot the same object) are pushed through a single
    :meth:`~repro.dispatch.DispatchSolver.solve_block` call, which additionally
    deduplicates slots with equal demand/cost signatures and vectorises the
    dual bisection across the remaining unique slots.

    This materialises all ``T`` tensors at once — ``O(T * |M|)`` live memory.
    The DP itself streams them through :class:`WindowedOperatingCosts` instead;
    this whole-horizon variant remains for consumers that genuinely need every
    slot at once (the explicit Figure-4 graph construction).
    """
    tensors: List[Optional[np.ndarray]] = [None] * len(grids)
    by_grid: dict = {}
    for t, grid in enumerate(grids):
        by_grid.setdefault(grid.key, (grid, []))[1].append(t)
    for grid, ts in by_grid.values():
        costs, _ = dispatcher.solve_block(ts, grid.configs())
        for i, t in enumerate(ts):
            tensors[t] = costs[i].reshape(grid.shape)
    return tensors  # type: ignore[return-value]


class WindowedOperatingCosts:
    """Produce ``g_t`` value tensors one checkpoint window at a time.

    The provider materialises the window containing the requested slot —
    grouping the window's slots by grid and issuing one batched
    :meth:`~repro.dispatch.DispatchSolver.solve_block` per distinct grid, the
    same per-grid batching the whole-horizon path uses — and drops the previous
    window, so at most ``window`` cost tensors are live.  Windows are aligned
    to multiples of ``window``, which makes the backward pass rematerialise
    exactly the tensors the forward pass produced.

    With ``memoise=False`` the dispatch engine is told not to cache the
    per-slot results (on long horizons that cache — one cost row *and* one
    ``|M| x d`` load block per signature — is itself ``O(T * |M|)``).  The
    provider instead keeps its own **byte-capped signature memo of cost
    tensors only**: real long-horizon traces carry far fewer distinct
    ``(demand, cost-row)`` signatures than slots, so later windows (and the
    entire backtracking pass) reuse the forward pass's tensors instead of
    re-running the dual bisection, while adversarially unique horizons simply
    stop inserting once the budget is reached and degrade to recompute.
    """

    def __init__(
        self,
        instance: ProblemInstance,
        grids: Sequence[StateGrid],
        dispatcher: DispatchSolver,
        window: Optional[int] = None,
        memoise: bool = True,
        memo_bytes: int = 32 * 1024 * 1024,
    ):
        self.instance = instance
        self.grids = tuple(grids)
        self.dispatcher = dispatcher
        T = len(self.grids)
        self.window = T if window is None else max(1, min(int(window), max(T, 1)))
        self.memoise = memoise
        self.memo_bytes = int(memo_bytes)
        self._tensors: dict = {}
        self._sig_memo: dict = {}
        self._sig_memo_used = 0
        #: Number of window materialisations (2x the window count for a full
        #: streaming solve: one forward pass, one backtracking pass).
        self.windows_materialised = 0
        #: Slots served from the signature memo instead of a dispatch solve.
        self.signature_memo_hits = 0

    def tensor(self, t: int) -> np.ndarray:
        """The ``g_t`` value tensor of slot ``t`` (materialising its window)."""
        g_tensor = self._tensors.get(t)
        if g_tensor is None:
            self._materialise((t // self.window) * self.window)
            g_tensor = self._tensors[t]
        return g_tensor

    def _materialise(self, lo: int) -> None:
        hi = min(lo + self.window, len(self.grids))
        self._tensors.clear()
        by_grid: dict = {}
        sig_keys: dict = {}
        use_sig_memo = not self.memoise  # streaming mode only; the classic
        # whole-horizon pass already deduplicates inside its single block
        for t in range(lo, hi):
            grid = self.grids[t]
            if use_sig_memo:
                sig_keys[t] = (self.dispatcher._slot_signature(t), grid.key)
                hit = self._sig_memo.get(sig_keys[t])
                if hit is not None:
                    self._tensors[t] = hit
                    self.signature_memo_hits += 1
                    continue
            by_grid.setdefault(grid.key, (grid, []))[1].append(t)
        for grid, ts in by_grid.values():
            costs, _ = self.dispatcher.solve_block(ts, grid.configs(), memoise=self.memoise)
            for i, t in enumerate(ts):
                if not use_sig_memo:
                    self._tensors[t] = costs[i].reshape(grid.shape)
                    continue
                key = sig_keys[t]
                cached = self._sig_memo.get(key)
                if cached is not None:
                    # duplicate signature within the window, first copy wins
                    self._tensors[t] = cached
                    continue
                # copy the row out of the (window x configs) block so a memo
                # entry pins |M| floats, not the whole window's result (and
                # the block's load array can be freed immediately)
                tensor = costs[i].reshape(grid.shape).copy()
                tensor.setflags(write=False)
                self._tensors[t] = tensor
                if self._sig_memo_used + tensor.nbytes <= self.memo_bytes:
                    self._sig_memo[key] = tensor
                    self._sig_memo_used += tensor.nbytes
        self.windows_materialised += 1


def _check_some_feasible(tensor: np.ndarray, t: int) -> None:
    if not np.any(np.isfinite(tensor)):
        raise ValueError(
            f"slot {t}: no configuration on the grid can serve the demand "
            "(instance infeasible or grid too coarse)"
        )


def _backtrack_windowed(
    grids: Sequence[StateGrid],
    beta: np.ndarray,
    T: int,
    window: int,
    tables_for_window: Callable[[int, int], Sequence[np.ndarray]],
) -> np.ndarray:
    """Walk the argmin chain backwards, one table window at a time.

    ``tables_for_window(c, e)`` returns the value tensors of slots ``c..e``
    (inclusive); windows are processed from the last to the first, each seeded
    by the configuration the following window chose for its first slot.  With
    ``window >= T`` and the full table list this is the classic single-sweep
    backtrack; with rematerialising callbacks it is the checkpointed
    ``O(sqrt(T))``-memory variant.  Two scratch buffers are threaded through
    the walk; the switching-cost tensor is additionally memoised on its
    ``(grid, next configuration)`` pair — optimal schedules hold their
    configuration over long stretches, so most slots reuse it outright.
    """
    d = len(beta)
    configs = np.zeros((T, d), dtype=int)
    if T == 0:
        return configs
    switch: Optional[np.ndarray] = None
    total: Optional[np.ndarray] = None
    switch_key: Optional[tuple] = None

    def argmin_prev(grid: StateGrid, table: np.ndarray, x_next: np.ndarray) -> np.ndarray:
        nonlocal switch, total, switch_key
        key = (id(grid), tuple(int(v) for v in x_next))
        if switch_key != key:
            out = switch if switch is not None and switch.shape == grid.shape else None
            switch = switching_cost_tensor(grid.values, x_next, beta, out=out)
            switch_key = key
        if total is None or total.shape != grid.shape:
            total = np.empty(grid.shape)
        np.add(table, switch, out=total)
        idx = np.unravel_index(int(np.argmin(total)), grid.shape)
        return grid.config_at(idx)

    next_config: Optional[np.ndarray] = None
    for c in range(((T - 1) // window) * window, -1, -window):
        e = min(c + window, T) - 1
        tables = tables_for_window(c, e)
        if next_config is None:
            # final slot of the horizon: free power-down, plain argmin
            idx = np.unravel_index(int(np.argmin(tables[e - c])), grids[e].shape)
            configs[e] = grids[e].config_at(idx)
        else:
            configs[e] = argmin_prev(grids[e], tables[e - c], next_config)
        for t in range(e, c, -1):
            configs[t - 1] = argmin_prev(grids[t - 1], tables[t - 1 - c], configs[t])
        next_config = configs[c]
    return configs


def backtrack_schedule(
    grids: Sequence[StateGrid],
    tables: Sequence[np.ndarray],
    beta: np.ndarray,
) -> np.ndarray:
    """Reconstruct the optimal configuration path from the DP value tensors.

    ``tables[t]`` is the value tensor ``V_t`` on ``grids[t]``; the path ends at
    the argmin of the final tensor and walks backwards through the argmin of
    ``V_{t-1} + S(., x_t)``.  Shared by :func:`solve_dp` and the sweep engine's
    shared-context path (which reuses the memoised per-slot value stream as the
    tables).
    """
    T = len(grids)
    return _backtrack_windowed(grids, beta, T, max(T, 1), lambda c, e: tables)


def _backtrack_checkpointed(
    grids: Sequence[StateGrid],
    beta: np.ndarray,
    T: int,
    window: int,
    checkpoints: dict,
    provider: WindowedOperatingCosts,
) -> np.ndarray:
    """Checkpointed backward pass: rematerialise each window by forward DP.

    ``checkpoints`` maps window-start slots to their value tensors (consumed —
    each checkpoint is released once its window has been walked, so the live
    set only shrinks).  Rematerialisation repeats the exact forward-pass
    operations from the checkpoint, so the recovered tables — and therefore
    the argmin chain — are bit-identical to the full-history pass.
    """

    def tables_for_window(c: int, e: int) -> List[np.ndarray]:
        value = checkpoints.pop(c)
        tables = [value]
        for t in range(c + 1, e + 1):
            g_tensor = provider.tensor(t)
            arrival = transition(value, grids[t - 1].values, grids[t].values, beta)
            value = np.add(arrival, g_tensor, out=arrival)
            tables.append(value)
        return tables

    return _backtrack_windowed(grids, beta, T, window, tables_for_window)


def solve_dp(
    instance: ProblemInstance,
    gamma: Optional[float] = None,
    grids: Optional[Sequence[StateGrid]] = None,
    dispatcher: Optional[DispatchSolver] = None,
    keep_tables: bool = False,
    return_schedule: bool = True,
    checkpoint_every: Optional[int] = None,
    value_dtype=None,
) -> OfflineResult:
    """Run the forward DP / shortest-path computation.

    Parameters
    ----------
    instance:
        The problem instance.
    gamma:
        When given, use the reduced grids ``M^gamma_{t,j}`` (approximation
        algorithm); when ``None``, use the full grids (exact algorithm).
        Ignored when explicit ``grids`` are supplied.
    grids:
        Optional explicit per-slot grids (advanced use; length must be ``T``).
    dispatcher:
        Shared dispatch solver (created on demand).
    keep_tables:
        Keep all per-slot value tensors in the result.  Forces the classic
        full-history pass (``O(T * |M|)`` memory) regardless of
        ``checkpoint_every``.
    return_schedule:
        When ``False``, only the optimal cost is computed (the backward pass
        and the memory for the table history are skipped); the result's
        ``schedule`` is ``None``.
    checkpoint_every:
        Checkpoint window of the streaming value pass.  ``None`` auto-tunes
        via :func:`default_checkpoint_every`: small instances keep the full
        history (no recompute), large ones stream with a ``sqrt(T)`` window.
        Any explicit value forces streaming with that window (must be >= 1;
        values above ``T`` are clamped) — ``O(T/k + k)`` value tensors live
        instead of ``T``, at the cost of re-running the forward DP once
        inside each window during backtracking.
    value_dtype:
        dtype of the value tensors — ``float64`` (default) or ``float32``.
        A ``float32`` stream halves the memory of checkpoints and windows;
        the reported cost of a schedule-returning solve is *always* a
        ``float64`` re-evaluation of the reconstructed schedule, so only the
        argmin chain (and the cost of cost-only solves) feels the reduced
        precision.

    Returns
    -------
    OfflineResult
        The schedule is optimal among all schedules whose configurations lie on
        the per-slot grids; with full grids this is the global optimum.
    """
    T, d = instance.T, instance.d
    beta = instance.beta
    dispatcher = dispatcher or DispatchSolver(instance)

    if grids is not None:
        grids = tuple(grids)
        if len(grids) != T:
            raise ValueError(f"expected {T} grids, got {len(grids)}")
    else:
        grids = tuple(grid_for_slot(instance, t, gamma) for t in range(T))

    if T == 0:
        return OfflineResult(
            schedule=Schedule.empty(0, d) if return_schedule else None,
            cost=0.0,
            grids=grids,
            value_tables=() if keep_tables else None,
            gamma=gamma,
        )

    dtype = np.dtype(np.float64 if value_dtype is None else value_dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"value_dtype must be float32 or float64, got {dtype}")

    if checkpoint_every is not None and int(checkpoint_every) < 1:
        raise ValueError("checkpoint_every must be a positive integer when given")
    if keep_tables:
        window = None
    elif checkpoint_every is not None:
        window = min(int(checkpoint_every), T)
    else:
        window = default_checkpoint_every(
            T, max(g.size for g in grids), itemsize=dtype.itemsize
        )
    streaming = window is not None
    provider = WindowedOperatingCosts(
        instance, grids, dispatcher, window=window, memoise=not streaming
    )

    keep_history = keep_tables or (return_schedule and not streaming)
    track_checkpoints = streaming and return_schedule

    tables: List[np.ndarray] = []
    checkpoints: dict = {}
    value: Optional[np.ndarray] = None

    # Streaming passes may run repeated same-grid slots through one
    # preallocated TransitionPlan (bit-identical kernels, no per-slot buffer
    # churn).  The full-history pass must not: the plan reuses its output
    # buffers, and `tables` needs every slot's tensor to stay distinct.
    use_plan = not keep_history and dtype == np.dtype(np.float64)
    plan = None
    plan_grid_key = None
    from_plan = False

    for t in range(T):
        grid = grids[t]
        g_tensor = provider.tensor(t)
        _check_some_feasible(g_tensor, t)
        if t == 0:
            arrival = startup_cost_tensor(grid.values, beta)
            if arrival.dtype != dtype:
                arrival = arrival.astype(dtype)
            from_plan = False
        else:
            arrival = None
            if use_plan and value.dtype == np.float64 and grid.key == grids[t - 1].key:
                if plan_grid_key != grid.key:
                    plan_grid_key = grid.key
                    plan = make_transition_plan(grid.values, grid.values, beta)
                if plan is not None:
                    arrival = plan.apply(value)
                    from_plan = True
            if arrival is None:
                arrival = transition(value, grids[t - 1].values, grid.values, beta)
                from_plan = False
        # arrival is a fresh tensor every slot (or a plan-owned buffer), so
        # accumulate in place
        value = np.add(arrival, g_tensor, out=arrival)
        if keep_history:
            tables.append(value)
        elif track_checkpoints and t % window == 0:
            # a plan-owned buffer is overwritten two slots later (ping-pong):
            # checkpoints must own their bytes
            checkpoints[t] = value.copy() if from_plan else value

    assert value is not None
    best_flat = int(np.argmin(value))
    best_cost = float(value.reshape(-1)[best_flat])
    if not np.isfinite(best_cost):
        raise ValueError("no feasible schedule exists on the given grids")

    if not return_schedule:
        return OfflineResult(
            schedule=None,
            cost=best_cost,
            grids=grids,
            value_tables=tuple(tables) if keep_tables else None,
            gamma=gamma,
            checkpoint_every=window if streaming else None,
        )

    # ------------------------------------------------------------ backward pass
    if keep_history:
        configs = backtrack_schedule(grids, tables, beta)
    else:
        configs = _backtrack_checkpointed(grids, beta, T, window, checkpoints, provider)
    schedule = Schedule(configs)
    # Re-evaluate the schedule cost explicitly (always in float64); for the
    # exact algorithm this equals ``best_cost`` (up to dispatch tolerance) and
    # serves as a sanity check, for reduced grids it is by definition identical
    # as well, and for float32 value streams it removes the accumulated
    # single-precision error from the reported cost.
    breakdown = evaluate_schedule(instance, schedule, dispatcher, memoise=not streaming)
    return OfflineResult(
        schedule=schedule,
        cost=float(breakdown.total),
        grids=grids,
        value_tables=tuple(tables) if keep_tables else None,
        gamma=gamma,
        checkpoint_every=window if streaming else None,
    )
