"""The dynamic-programming engine behind the offline algorithms.

Section 4.1 of the paper solves the offline right-sizing problem by a shortest
path in a layered graph: one layer of vertices per time slot, one vertex per
server configuration, power-up/-down edges inside a layer and operating-cost
edges between the two half-layers of a slot.  Because the graph is layered, the
shortest path is a straightforward forward dynamic program over *value tensors*

``V_t[x] = (cheapest cost of serving slots 0..t and ending slot t in configuration x)``

with the recurrence

``V_t[x] = g_t(x) + min_{x'} ( V_{t-1}[x'] + sum_j beta_j (x_j - x'_j)^+ )``

and ``V_{-1} = 0`` concentrated at the empty configuration.  The inner
minimisation is the separable min-plus transition of
:mod:`repro.offline.transitions`.  Since powering down at the end of the
horizon is free, ``OPT = min_x V_{T-1}[x]``.

The same engine serves

* the exact algorithm (full grids, Section 4.1),
* the (1+eps)-approximation (geometric grids ``M^gamma``, Section 4.2),
* time-dependent data-center sizes (per-slot grids, Section 4.3), and
* the incremental prefix-optimum tracker used by the online algorithms
  (:mod:`repro.online.tracker`), which simply keeps the last value tensor and
  feeds one more slot at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core.costs import evaluate_schedule
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..dispatch.allocation import DispatchSolver
from .state_grid import StateGrid, grid_for_slot
from .transitions import startup_cost_tensor, switching_cost_tensor, transition

__all__ = [
    "OfflineResult",
    "backtrack_schedule",
    "operating_cost_tensor",
    "operating_cost_tensors",
    "solve_dp",
]


@dataclass(frozen=True, eq=False)
class OfflineResult:
    """Result of an offline optimisation run.

    Attributes
    ----------
    schedule:
        The computed schedule (optimal on the given grids).
    cost:
        Its total cost ``C(X)`` with respect to the *original* instance.
    grids:
        The per-slot state grids that were searched.
    value_tables:
        The per-slot DP value tensors (only kept when requested; useful for
        diagnostics and for warm-starting analyses).
    gamma:
        The grid-reduction parameter (``None`` for the exact algorithm).
    """

    schedule: Schedule
    cost: float
    grids: tuple
    value_tables: Optional[tuple] = None
    gamma: Optional[float] = None

    @property
    def num_states_explored(self) -> int:
        """Total number of (slot, configuration) pairs examined."""
        return int(sum(g.size for g in self.grids))


def operating_cost_tensor(
    instance: ProblemInstance,
    t: int,
    grid: StateGrid,
    dispatcher: DispatchSolver,
) -> np.ndarray:
    """Evaluate ``g_t(x)`` for every configuration of ``grid`` as a value tensor."""
    configs = grid.configs()
    costs, _ = dispatcher.solve_grid(t, configs)
    return costs.reshape(grid.shape)


def operating_cost_tensors(
    instance: ProblemInstance,
    grids: Sequence[StateGrid],
    dispatcher: DispatchSolver,
) -> List[np.ndarray]:
    """Evaluate ``g_t`` for *all* slots as one batched dispatch computation.

    Slots sharing a grid (always the case for time-invariant fleets, where
    :func:`~repro.offline.state_grid.grid_for_slot` memoisation hands every
    slot the same object) are pushed through a single
    :meth:`~repro.dispatch.DispatchSolver.solve_block` call, which additionally
    deduplicates slots with equal demand/cost signatures and vectorises the
    dual bisection across the remaining unique slots.
    """
    tensors: List[Optional[np.ndarray]] = [None] * len(grids)
    by_grid: dict = {}
    for t, grid in enumerate(grids):
        by_grid.setdefault(grid.key, (grid, []))[1].append(t)
    for grid, ts in by_grid.values():
        costs, _ = dispatcher.solve_block(ts, grid.configs())
        for i, t in enumerate(ts):
            tensors[t] = costs[i].reshape(grid.shape)
    return tensors  # type: ignore[return-value]


def _check_some_feasible(tensor: np.ndarray, t: int) -> None:
    if not np.any(np.isfinite(tensor)):
        raise ValueError(
            f"slot {t}: no configuration on the grid can serve the demand "
            "(instance infeasible or grid too coarse)"
        )


def backtrack_schedule(
    grids: Sequence[StateGrid],
    tables: Sequence[np.ndarray],
    beta: np.ndarray,
) -> np.ndarray:
    """Reconstruct the optimal configuration path from the DP value tensors.

    ``tables[t]`` is the value tensor ``V_t`` on ``grids[t]``; the path ends at
    the argmin of the final tensor and walks backwards through the argmin of
    ``V_{t-1} + S(., x_t)``.  Shared by :func:`solve_dp` and the sweep engine's
    shared-context path (which reuses the memoised per-slot value stream as the
    tables).  One scratch buffer carries the per-slot ``prev_value + switch``
    sum: it is reallocated only when consecutive grids differ in shape.
    """
    T = len(grids)
    d = len(beta)
    configs = np.zeros((T, d), dtype=int)
    if T == 0:
        return configs
    best_flat = int(np.argmin(tables[T - 1]))
    idx = np.unravel_index(best_flat, grids[T - 1].shape)
    configs[T - 1] = grids[T - 1].config_at(idx)
    scratch: Optional[np.ndarray] = None
    for t in range(T - 1, 0, -1):
        prev_grid = grids[t - 1]
        scratch = switching_cost_tensor(prev_grid.values, configs[t], beta, out=scratch)
        total = np.add(tables[t - 1], scratch, out=scratch)
        flat = int(np.argmin(total))
        idx = np.unravel_index(flat, prev_grid.shape)
        configs[t - 1] = prev_grid.config_at(idx)
    return configs


def solve_dp(
    instance: ProblemInstance,
    gamma: Optional[float] = None,
    grids: Optional[Sequence[StateGrid]] = None,
    dispatcher: Optional[DispatchSolver] = None,
    keep_tables: bool = False,
    return_schedule: bool = True,
) -> OfflineResult:
    """Run the forward DP / shortest-path computation.

    Parameters
    ----------
    instance:
        The problem instance.
    gamma:
        When given, use the reduced grids ``M^gamma_{t,j}`` (approximation
        algorithm); when ``None``, use the full grids (exact algorithm).
        Ignored when explicit ``grids`` are supplied.
    grids:
        Optional explicit per-slot grids (advanced use; length must be ``T``).
    dispatcher:
        Shared dispatch solver (created on demand).
    keep_tables:
        Keep all per-slot value tensors in the result.
    return_schedule:
        When ``False``, only the optimal cost is computed (the backward pass
        and the memory for all value tensors are skipped).

    Returns
    -------
    OfflineResult
        The schedule is optimal among all schedules whose configurations lie on
        the per-slot grids; with full grids this is the global optimum.
    """
    T, d = instance.T, instance.d
    beta = instance.beta
    dispatcher = dispatcher or DispatchSolver(instance)

    if grids is not None:
        grids = tuple(grids)
        if len(grids) != T:
            raise ValueError(f"expected {T} grids, got {len(grids)}")
    else:
        grids = tuple(grid_for_slot(instance, t, gamma) for t in range(T))

    if T == 0:
        return OfflineResult(
            schedule=Schedule.empty(0, d), cost=0.0, grids=grids, value_tables=() if keep_tables else None, gamma=gamma
        )

    need_history = return_schedule or keep_tables
    tables: List[np.ndarray] = []
    value: Optional[np.ndarray] = None

    g_tensors = operating_cost_tensors(instance, grids, dispatcher)
    for t in range(T):
        grid = grids[t]
        g_tensor = g_tensors[t]
        _check_some_feasible(g_tensor, t)
        if t == 0:
            arrival = startup_cost_tensor(grid.values, beta)
        else:
            arrival = transition(value, grids[t - 1].values, grid.values, beta)
        # arrival is a fresh tensor every slot, so accumulate in place
        value = np.add(arrival, g_tensor, out=arrival)
        if need_history:
            tables.append(value)

    assert value is not None
    best_flat = int(np.argmin(value))
    best_cost = float(value.reshape(-1)[best_flat])
    if not np.isfinite(best_cost):
        raise ValueError("no feasible schedule exists on the given grids")

    if not return_schedule:
        return OfflineResult(
            schedule=Schedule.empty(0, d),
            cost=best_cost,
            grids=grids,
            value_tables=tuple(tables) if keep_tables else None,
            gamma=gamma,
        )

    # ------------------------------------------------------------ backward pass
    schedule = Schedule(backtrack_schedule(grids, tables, beta))
    # Re-evaluate the schedule cost explicitly; for the exact algorithm this
    # equals ``best_cost`` (up to dispatch tolerance) and serves as a sanity
    # check, for reduced grids it is by definition identical as well.
    breakdown = evaluate_schedule(instance, schedule, dispatcher)
    return OfflineResult(
        schedule=schedule,
        cost=float(breakdown.total),
        grids=grids,
        value_tables=tuple(tables) if keep_tables else None,
        gamma=gamma,
    )
