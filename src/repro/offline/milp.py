"""Exact mixed-integer formulation for linear operating-cost functions.

For operating-cost functions of the form ``f_{t,j}(z) = idle_{t,j} + slope_{t,j} * z``
(which includes the load-independent costs ``f_{t,j}(z) = l_{t,j}`` studied in
the companion paper [Albers & Quedenfeld, CIAC 2021]), the slot operating cost
given an optimal dispatch is itself linear in the decision variables:

``g_t(x_t) = sum_j idle_{t,j} * x_{t,j} + slope_{t,j} * w_{t,j}``

with dispatch volumes ``w_{t,j}`` constrained by ``sum_j w_{t,j} = lambda_t`` and
``0 <= w_{t,j} <= zmax_j * x_{t,j}``.  Together with power-up counters
``u_{t,j} >= x_{t,j} - x_{t-1,j}`` the whole right-sizing problem becomes a
mixed-integer linear program, which SciPy's HiGHS backend solves exactly.

The paper cites a polynomial min-cost-flow algorithm [1, 2] for the
load-independent special case; that construction does not generalise to
load-dependent costs and its details are not part of this paper, so this MILP
serves as the independent exact comparator in its place (see DESIGN.md,
"Substitutions").  Dropping the integrality requirement yields the fractional
relaxation, a lower bound on the discrete optimum used in the benchmark
harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import optimize, sparse

from ..core.cost_functions import ConstantCost, LinearCost, QuadraticCost, PowerCost, ScaledCost, ShiftedCost, CostFunction
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule

__all__ = ["MilpResult", "linear_coefficients", "is_linear_instance", "solve_milp", "solve_lp_relaxation"]


@dataclass(frozen=True, eq=False)
class MilpResult:
    """Result of the MILP / LP formulation."""

    schedule: Optional[Schedule]
    cost: float
    loads: Optional[np.ndarray]
    integral: bool
    status: str


def linear_coefficients(f: CostFunction) -> Optional[Tuple[float, float]]:
    """Return ``(idle, slope)`` when ``f`` is (an affine transformation of) a linear cost.

    Returns ``None`` for genuinely non-linear functions; the MILP formulation
    then does not apply.
    """
    if isinstance(f, ConstantCost):
        return float(f.level), 0.0
    if isinstance(f, LinearCost):
        return float(f.idle), float(f.slope)
    if isinstance(f, QuadraticCost) and f.b == 0.0:
        return float(f.idle), float(f.a)
    if isinstance(f, PowerCost) and (f.coef == 0.0 or f.exponent == 1.0):
        return float(f.idle), float(f.coef if f.exponent == 1.0 else 0.0)
    if isinstance(f, ScaledCost):
        base = linear_coefficients(f.base)
        if base is None:
            return None
        return base[0] * f.factor, base[1] * f.factor
    if isinstance(f, ShiftedCost):
        base = linear_coefficients(f.base)
        if base is None:
            return None
        return base[0] + f.offset, base[1]
    return None


def is_linear_instance(instance: ProblemInstance) -> bool:
    """Whether every operating-cost function of the instance is (affine) linear."""
    for t in range(instance.T):
        for f in instance.cost_row(t):
            if linear_coefficients(f) is None:
                return False
        if not instance.has_time_dependent_costs:
            break
    return True


def _build_lp(instance: ProblemInstance):
    """Assemble objective, constraints and bounds of the formulation.

    Variable layout (per slot ``t``):  ``x_{t,0..d-1}``, ``u_{t,0..d-1}``,
    ``w_{t,0..d-1}`` — i.e. ``3*T*d`` variables in total.
    """
    T, d = instance.T, instance.d
    if T == 0:
        raise ValueError("empty instance")
    zmax = instance.zmax
    beta = instance.beta
    n_vars = 3 * T * d

    def xi(t, j):
        return t * 3 * d + j

    def ui(t, j):
        return t * 3 * d + d + j

    def wi(t, j):
        return t * 3 * d + 2 * d + j

    c = np.zeros(n_vars)
    integrality = np.zeros(n_vars)
    lb = np.zeros(n_vars)
    ub = np.full(n_vars, np.inf)

    for t in range(T):
        counts = instance.counts_at(t)
        for j in range(d):
            coeffs = linear_coefficients(instance.cost_function(t, j))
            if coeffs is None:
                raise ValueError(
                    "MILP formulation requires linear operating-cost functions; "
                    f"slot {t}, type {j} is non-linear"
                )
            idle, slope = coeffs
            c[xi(t, j)] = idle
            c[ui(t, j)] = beta[j]
            c[wi(t, j)] = slope
            ub[xi(t, j)] = counts[j]
            ub[ui(t, j)] = counts[j]
            ub[wi(t, j)] = instance.demand[t]
            integrality[xi(t, j)] = 1
            integrality[ui(t, j)] = 1

    rows, cols, data = [], [], []
    b_lower, b_upper = [], []
    row = 0

    # power-up counters: u_{t,j} >= x_{t,j} - x_{t-1,j}
    for t in range(T):
        for j in range(d):
            rows.append(row); cols.append(ui(t, j)); data.append(1.0)
            rows.append(row); cols.append(xi(t, j)); data.append(-1.0)
            if t > 0:
                rows.append(row); cols.append(xi(t - 1, j)); data.append(1.0)
            b_lower.append(0.0)
            b_upper.append(np.inf)
            row += 1

    # demand coverage: sum_j w_{t,j} = lambda_t
    for t in range(T):
        for j in range(d):
            rows.append(row); cols.append(wi(t, j)); data.append(1.0)
        b_lower.append(float(instance.demand[t]))
        b_upper.append(float(instance.demand[t]))
        row += 1

    # capacity coupling: w_{t,j} <= zmax_j * x_{t,j}
    for t in range(T):
        for j in range(d):
            if not np.isfinite(zmax[j]):
                continue
            rows.append(row); cols.append(wi(t, j)); data.append(1.0)
            rows.append(row); cols.append(xi(t, j)); data.append(-float(zmax[j]))
            b_lower.append(-np.inf)
            b_upper.append(0.0)
            row += 1

    # with infinite capacity a server type can absorb any volume, but only if at
    # least one server is active: w_{t,j} <= lambda_t * x_{t,j}
    for t in range(T):
        for j in range(d):
            if np.isfinite(zmax[j]):
                continue
            rows.append(row); cols.append(wi(t, j)); data.append(1.0)
            rows.append(row); cols.append(xi(t, j)); data.append(-float(instance.demand[t]))
            b_lower.append(-np.inf)
            b_upper.append(0.0)
            row += 1

    A = sparse.csc_matrix((data, (rows, cols)), shape=(row, n_vars))
    constraints = optimize.LinearConstraint(A, np.array(b_lower), np.array(b_upper))
    bounds = optimize.Bounds(lb, ub)
    return c, constraints, bounds, integrality, (xi, ui, wi)


def _extract(instance, res, indexers, integral):
    T, d = instance.T, instance.d
    xi, ui, wi = indexers
    if not res.success:
        return MilpResult(schedule=None, cost=math.inf, loads=None, integral=integral, status=str(res.message))
    xs = np.zeros((T, d))
    ws = np.zeros((T, d))
    for t in range(T):
        for j in range(d):
            xs[t, j] = res.x[xi(t, j)]
            ws[t, j] = res.x[wi(t, j)]
    schedule = None
    if integral:
        schedule = Schedule(np.rint(xs).astype(int))
    return MilpResult(
        schedule=schedule,
        cost=float(res.fun),
        loads=ws,
        integral=integral,
        status="optimal",
    )


def solve_milp(instance: ProblemInstance) -> MilpResult:
    """Solve the exact MILP (linear operating costs only) with HiGHS."""
    c, constraints, bounds, integrality, indexers = _build_lp(instance)
    res = optimize.milp(
        c=c,
        constraints=constraints,
        bounds=bounds,
        integrality=integrality,
        options={"presolve": True},
    )
    return _extract(instance, res, indexers, integral=True)


def solve_lp_relaxation(instance: ProblemInstance) -> MilpResult:
    """Solve the LP relaxation (fractional number of active servers).

    The optimal value is a lower bound on the discrete optimum; the paper's
    related-work discussion calls this the *fractional setting*.
    """
    c, constraints, bounds, integrality, indexers = _build_lp(instance)
    res = optimize.milp(
        c=c,
        constraints=constraints,
        bounds=bounds,
        integrality=np.zeros_like(integrality),
        options={"presolve": True},
    )
    return _extract(instance, res, indexers, integral=False)
