"""Brute-force reference solvers for tiny instances.

These exist purely to validate the vectorised dynamic program and the
approximation algorithm: they implement the problem definition as literally as
possible, with no algorithmic shortcuts, so that agreement with the fast
solvers on randomly generated micro-instances is strong evidence of
correctness.

Two levels of brutishness are provided:

* :func:`pairwise_dp_optimal` — a dynamic program with an explicit
  ``O(|M|^2)`` transition (no separable min-plus trick).  Feasible up to a few
  thousand configurations.
* :func:`exhaustive_optimal` — full enumeration of all ``|M|^T`` schedules.
  Only for the tiniest instances, but it exercises even the DP recurrence
  itself.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

import numpy as np

from ..core.costs import evaluate_schedule
from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..dispatch.allocation import DispatchSolver
from .state_grid import grid_for_slot
from .transitions import switching_cost_between

__all__ = ["pairwise_dp_optimal", "exhaustive_optimal"]


def pairwise_dp_optimal(
    instance: ProblemInstance,
    dispatcher: Optional[DispatchSolver] = None,
) -> Tuple[Schedule, float]:
    """Optimal schedule via a DP with explicit pairwise transition costs.

    Independent of :mod:`repro.offline.transitions`; quadratic in the number of
    configurations per slot.
    """
    dispatcher = dispatcher or DispatchSolver(instance)
    T, d = instance.T, instance.d
    beta = instance.beta
    if T == 0:
        return Schedule.empty(0, d), 0.0

    prev_configs = None
    prev_value = None
    parents = []
    configs_per_slot = []

    for t in range(T):
        grid = grid_for_slot(instance, t)
        configs = grid.configs()
        costs, _ = dispatcher.solve_grid(t, configs)
        configs_per_slot.append(configs)
        n = len(configs)
        value = np.full(n, np.inf)
        parent = np.full(n, -1, dtype=int)
        if t == 0:
            for i, x in enumerate(configs):
                value[i] = costs[i] + float(np.sum(beta * x))
        else:
            for i, x in enumerate(configs):
                best = np.inf
                best_k = -1
                for k, x_prev in enumerate(prev_configs):
                    cand = prev_value[k] + switching_cost_between(x_prev, x, beta)
                    if cand < best:
                        best = cand
                        best_k = k
                value[i] = best + costs[i]
                parent[i] = best_k
        parents.append(parent)
        prev_configs, prev_value = configs, value

    best_idx = int(np.argmin(prev_value))
    best_cost = float(prev_value[best_idx])
    xs = np.zeros((T, d), dtype=int)
    idx = best_idx
    for t in range(T - 1, -1, -1):
        xs[t] = configs_per_slot[t][idx]
        idx = parents[t][idx] if t > 0 else -1
    schedule = Schedule(xs)
    return schedule, best_cost


def exhaustive_optimal(
    instance: ProblemInstance,
    dispatcher: Optional[DispatchSolver] = None,
    max_schedules: int = 2_000_000,
) -> Tuple[Schedule, float]:
    """Optimal schedule by enumerating every feasible schedule.

    Raises :class:`ValueError` when the search space exceeds ``max_schedules``.
    """
    dispatcher = dispatcher or DispatchSolver(instance)
    T, d = instance.T, instance.d
    if T == 0:
        return Schedule.empty(0, d), 0.0

    per_slot_configs = []
    total = 1
    for t in range(T):
        configs = grid_for_slot(instance, t).configs()
        per_slot_configs.append([tuple(int(v) for v in c) for c in configs])
        total *= len(configs)
        if total > max_schedules:
            raise ValueError(
                f"exhaustive search space too large ({total} > {max_schedules} schedules)"
            )

    best_cost = np.inf
    best_schedule = None
    for combo in itertools.product(*per_slot_configs):
        schedule = Schedule(np.array(combo, dtype=int))
        breakdown = evaluate_schedule(instance, schedule, dispatcher)
        if breakdown.total < best_cost:
            best_cost = breakdown.total
            best_schedule = schedule
    if best_schedule is None or not np.isfinite(best_cost):
        raise ValueError("no feasible schedule exists")
    return best_schedule, float(best_cost)
