"""Separable min-plus transitions of the right-sizing dynamic program.

The graph ``G(I)`` of Section 4.1 connects configurations of consecutive time
slots through chains of single-server power-up edges (weight ``beta_j``) and
power-down edges (weight 0).  The induced transition cost between two
configurations is therefore

``S(x', x) = sum_j beta_j * (x_j - x'_j)^+``,

which is *separable* across server types.  A min-plus product with a separable
kernel factorises into ``d`` one-dimensional relaxations, one per type; each of
those is a combination of a prefix minimum (power-up direction: moving from a
smaller source value ``u`` to a target ``v`` costs ``beta*(v-u)``) and a suffix
minimum (power-down direction: cost 0).  This reduces the per-slot transition
work from ``O(|M|^2)`` to ``O(d * |M|)`` and vectorises cleanly in NumPy, which
is the performance-critical trick behind both the exact solver and the
(1+eps)-approximation (where each dimension simply uses a sparser value list).

All functions below operate on *value tensors*: arrays whose axis ``j`` is
indexed by the admissible values of server type ``j`` (see
:class:`repro.offline.state_grid.StateGrid`).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "relax_dimension",
    "transition",
    "switching_cost_between",
    "switching_cost_tensor",
    "startup_cost_tensor",
]


def relax_dimension(
    values_tensor: np.ndarray,
    src_values: np.ndarray,
    dst_values: np.ndarray,
    beta: float,
    axis: int,
) -> np.ndarray:
    """One-dimensional min-plus relaxation along ``axis``.

    Computes ``W[..., k, ...] = min_i  V[..., i, ...] + beta * max(dst[k] - src[i], 0)``
    where ``i`` ranges over ``src_values`` and ``k`` over ``dst_values``.

    The decomposition used is
    ``min( beta*dst[k] + min_{src<=dst[k]} (V - beta*src),  min_{src>=dst[k]} V )``,
    i.e. a prefix minimum for the power-up direction and a suffix minimum for
    the (free) power-down direction.  Both are computed with
    ``numpy.minimum.accumulate`` and the mapping between the two value lists is
    done with ``numpy.searchsorted``, so arbitrary (sorted) source and target
    value sets are supported — in particular the geometric grids ``M^gamma`` of
    the approximation algorithm and per-slot grids of different sizes.
    """
    src_values = np.asarray(src_values, dtype=float)
    dst_values = np.asarray(dst_values, dtype=float)
    V = np.moveaxis(np.asarray(values_tensor, dtype=float), axis, -1)
    if V.shape[-1] != len(src_values):
        raise ValueError(
            f"axis {axis} has length {V.shape[-1]} but {len(src_values)} source values were given"
        )

    # Power-up direction: target >= source.  The shifted tensor is a scratch
    # buffer: the prefix minimum is accumulated into it in place, and the
    # gathered `up` array doubles as the output buffer below.
    shifted = V - beta * src_values  # broadcast along the last axis
    np.minimum.accumulate(shifted, axis=-1, out=shifted)
    # index of the last source value <= each destination value
    up_idx = np.searchsorted(src_values, dst_values, side="right") - 1
    valid_up = up_idx >= 0
    if valid_up.all():
        up = shifted[..., up_idx]
        up += beta * dst_values
    else:
        up = np.full(V.shape[:-1] + (len(dst_values),), np.inf)
        if np.any(valid_up):
            up[..., valid_up] = shifted[..., up_idx[valid_up]] + beta * dst_values[valid_up]

    # Power-down direction: target <= source, no cost.  Reuse the scratch
    # buffer for the suffix minimum (V itself must stay intact for callers).
    np.minimum.accumulate(V[..., ::-1], axis=-1, out=shifted[..., ::-1])
    suffix_min = shifted
    down_idx = np.searchsorted(src_values, dst_values, side="left")
    valid_down = down_idx < len(src_values)
    if valid_down.all():
        np.minimum(up, suffix_min[..., down_idx], out=up)
    elif np.any(valid_down):
        up[..., valid_down] = np.minimum(
            up[..., valid_down], suffix_min[..., down_idx[valid_down]]
        )

    return np.moveaxis(up, -1, axis)


def transition(
    values_tensor: np.ndarray,
    src_values: Sequence[np.ndarray],
    dst_values: Sequence[np.ndarray],
    beta: Sequence[float],
) -> np.ndarray:
    """Full separable min-plus transition between two (possibly different) grids.

    ``result[x] = min_{x'} V[x'] + sum_j beta_j (x_j - x'_j)^+`` for every ``x``
    of the destination grid.  Implemented as ``d`` sequential calls to
    :func:`relax_dimension`; the order of dimensions does not matter because the
    kernel is separable.
    """
    beta = np.asarray(beta, dtype=float)
    d = len(beta)
    if len(src_values) != d or len(dst_values) != d:
        raise ValueError("src_values, dst_values and beta must all have length d")
    out = np.asarray(values_tensor, dtype=float)
    for j in range(d):
        out = relax_dimension(out, src_values[j], dst_values[j], float(beta[j]), axis=j)
    return out


def switching_cost_between(x_prev: np.ndarray, x_next: np.ndarray, beta: np.ndarray) -> float:
    """Switching cost ``S(x_prev, x_next) = sum_j beta_j (x_next_j - x_prev_j)^+``."""
    diff = np.maximum(np.asarray(x_next, dtype=float) - np.asarray(x_prev, dtype=float), 0.0)
    return float(np.sum(diff * np.asarray(beta, dtype=float)))


def switching_cost_tensor(
    src_values: Sequence[np.ndarray],
    x_next: Sequence[int],
    beta: Sequence[float],
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Tensor of switching costs from every source-grid configuration to ``x_next``.

    Used for backwards path reconstruction: the predecessor of ``x_next`` is the
    argmin of ``V_prev + switching_cost_tensor(...)``.  ``out``, when given with
    the right shape, is overwritten and returned instead of allocating a fresh
    tensor — the backward pass of the DP calls this once per slot and reuses a
    single scratch buffer across slots whose grids agree.
    """
    beta = np.asarray(beta, dtype=float)
    d = len(beta)
    shape = tuple(len(np.asarray(v)) for v in src_values)
    if out is not None and out.shape == shape:
        total = out
        total.fill(0.0)
    else:
        total = np.zeros(shape)
    for j in range(d):
        vals = np.asarray(src_values[j], dtype=float)
        per_dim = beta[j] * np.maximum(float(x_next[j]) - vals, 0.0)
        reshape = [1] * d
        reshape[j] = len(vals)
        total += per_dim.reshape(reshape)
    return total


def startup_cost_tensor(dst_values: Sequence[np.ndarray], beta: Sequence[float]) -> np.ndarray:
    """Tensor of switching costs from the empty configuration to every grid point.

    This seeds the dynamic program at the first time slot (``x_0 = 0`` in the
    paper's convention, so every initially active server pays its power-up cost).
    """
    beta = np.asarray(beta, dtype=float)
    d = len(beta)
    shape = tuple(len(np.asarray(v)) for v in dst_values)
    total = np.zeros(shape)
    for j in range(d):
        vals = np.asarray(dst_values[j], dtype=float)
        reshape = [1] * d
        reshape[j] = len(vals)
        total = total + (beta[j] * vals).reshape(reshape)
    return total
