"""Separable min-plus transitions of the right-sizing dynamic program.

The graph ``G(I)`` of Section 4.1 connects configurations of consecutive time
slots through chains of single-server power-up edges (weight ``beta_j``) and
power-down edges (weight 0).  The induced transition cost between two
configurations is therefore

``S(x', x) = sum_j beta_j * (x_j - x'_j)^+``,

which is *separable* across server types.  A min-plus product with a separable
kernel factorises into ``d`` one-dimensional relaxations, one per type; each of
those is a combination of a prefix minimum (power-up direction: moving from a
smaller source value ``u`` to a target ``v`` costs ``beta*(v-u)``) and a suffix
minimum (power-down direction: cost 0).  This reduces the per-slot transition
work from ``O(|M|^2)`` to ``O(d * |M|)`` and vectorises cleanly in NumPy, which
is the performance-critical trick behind both the exact solver and the
(1+eps)-approximation (where each dimension simply uses a sparser value list).

All functions below operate on *value tensors*: arrays whose axis ``j`` is
indexed by the admissible values of server type ``j`` (see
:class:`repro.offline.state_grid.StateGrid`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.backend import get_backend

__all__ = [
    "relax_dimension",
    "transition",
    "TransitionPlan",
    "make_transition_plan",
    "switching_cost_between",
    "switching_cost_tensor",
    "startup_cost_tensor",
]


#: Per-(src, dst) value-list plans: the ``searchsorted`` index maps between two
#: grid value lists depend only on the lists, never on the value tensor or
#: ``beta``, yet the DP recomputes them for every slot.  Grids are memoised per
#: instance (``grid_for_slot``), so the common time-invariant case sees one
#: (src, dst) pair for the whole horizon — one plan per pair turns the per-slot
#: index computation into a dictionary lookup.  Keyed by content (bytes), so
#: equal grids share a plan across instances; bounded to keep pathological
#: workloads (thousands of distinct per-slot grids) from pinning memory.
_PLAN_CACHE: dict = {}
#: Identity fast path for read-only value arrays: grid value lists are frozen
#: by :class:`~repro.offline.state_grid.StateGrid` and memoised per instance,
#: so the same array objects recur ``T * d`` times per solve — the id lookup
#: (validated by ``is``, as in ``DispatchSolver._configs_key``) skips the
#: per-call ``tobytes`` serialisation of up to ~10^4 values per dimension.
_PLAN_ID_CACHE: dict = {}
_PLAN_CACHE_MAX = 4096


def _relax_plan(src_values, dst_values) -> tuple:
    """``(src_f, dst_f, up_idx, all_up, valid_up, down_idx, all_down, valid_down)``."""
    src = np.asarray(src_values)
    dst = np.asarray(dst_values)
    id_key = None
    if not src.flags.writeable and not dst.flags.writeable:
        id_key = (id(src), id(dst))
        entry = _PLAN_ID_CACHE.get(id_key)
        if entry is not None and entry[0] is src and entry[1] is dst:
            return entry[2]
    key = (src.dtype.str, src.tobytes(), dst.dtype.str, dst.tobytes())
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        src_f = np.asarray(src, dtype=float)
        dst_f = np.asarray(dst, dtype=float)
        # index of the last source value <= each destination value
        up_idx = np.searchsorted(src_f, dst_f, side="right") - 1
        valid_up = up_idx >= 0
        down_idx = np.searchsorted(src_f, dst_f, side="left")
        valid_down = down_idx < len(src_f)
        plan = (
            src_f,
            dst_f,
            up_idx,
            bool(valid_up.all()),
            valid_up,
            np.minimum(down_idx, max(len(src_f) - 1, 0)),
            bool(valid_down.all()),
            valid_down,
        )
        if len(_PLAN_CACHE) >= _PLAN_CACHE_MAX:
            _PLAN_CACHE.clear()
        _PLAN_CACHE[key] = plan
    if id_key is not None:
        if len(_PLAN_ID_CACHE) >= _PLAN_CACHE_MAX:
            _PLAN_ID_CACHE.clear()
        _PLAN_ID_CACHE[id_key] = (src, dst, plan)
    return plan


def relax_dimension(
    values_tensor: np.ndarray,
    src_values: np.ndarray,
    dst_values: np.ndarray,
    beta: float,
    axis: int,
) -> np.ndarray:
    """One-dimensional min-plus relaxation along ``axis``.

    Computes ``W[..., k, ...] = min_i  V[..., i, ...] + beta * max(dst[k] - src[i], 0)``
    where ``i`` ranges over ``src_values`` and ``k`` over ``dst_values``.

    The decomposition used is
    ``min( beta*dst[k] + min_{src<=dst[k]} (V - beta*src),  min_{src>=dst[k]} V )``,
    i.e. a prefix minimum for the power-up direction and a suffix minimum for
    the (free) power-down direction.  Both are computed with
    ``numpy.minimum.accumulate``; the ``numpy.searchsorted`` mapping between the
    two value lists is hoisted into a content-keyed plan cache (consecutive
    slots almost always share a grid), so arbitrary (sorted) source and target
    value sets are supported — in particular the geometric grids ``M^gamma`` of
    the approximation algorithm and per-slot grids of different sizes.

    Floating value tensors keep their dtype (the streaming DP optionally runs
    ``float32`` value passes); any other input dtype is promoted to ``float64``.
    """
    src_f, dst_f, up_idx, all_up, valid_up, down_idx, all_down, valid_down = _relax_plan(
        src_values, dst_values
    )
    V = np.asarray(values_tensor)
    # swapaxes instead of moveaxis: the relaxation is elementwise along the
    # moved axis, so any consistent permutation works, and swapaxes skips
    # moveaxis' per-call axis normalisation (the DP calls this T*d times)
    moved = axis not in (-1, V.ndim - 1)
    if moved:
        V = np.swapaxes(V, axis, -1)
    if V.dtype not in (np.float32, np.float64):
        V = V.astype(float)
    if V.shape[-1] != len(src_f):
        raise ValueError(
            f"axis {axis} has length {V.shape[-1]} but {len(src_f)} source values were given"
        )
    dtype = V.dtype

    # Power-up direction: target >= source.  The shifted tensor is a scratch
    # buffer: the prefix minimum is accumulated into it in place, and the
    # gathered `up` array doubles as the output buffer below.
    shifted = V - np.asarray(beta * src_f, dtype=dtype)  # broadcast along the last axis
    np.minimum.accumulate(shifted, axis=-1, out=shifted)
    if all_up:
        up = shifted[..., up_idx]
        up += np.asarray(beta * dst_f, dtype=dtype)
    else:
        up = np.full(V.shape[:-1] + (len(dst_f),), np.inf, dtype=dtype)
        if np.any(valid_up):
            up[..., valid_up] = shifted[..., up_idx[valid_up]] + np.asarray(
                beta * dst_f[valid_up], dtype=dtype
            )

    # Power-down direction: target <= source, no cost.  Reuse the scratch
    # buffer for the suffix minimum (V itself must stay intact for callers).
    np.minimum.accumulate(V[..., ::-1], axis=-1, out=shifted[..., ::-1])
    suffix_min = shifted
    if all_down:
        np.minimum(up, suffix_min[..., down_idx], out=up)
    elif np.any(valid_down):
        up[..., valid_down] = np.minimum(
            up[..., valid_down], suffix_min[..., down_idx[valid_down]]
        )

    return np.swapaxes(up, axis, -1) if moved else up


def transition(
    values_tensor: np.ndarray,
    src_values: Sequence[np.ndarray],
    dst_values: Sequence[np.ndarray],
    beta: Sequence[float],
) -> np.ndarray:
    """Full separable min-plus transition between two (possibly different) grids.

    ``result[x] = min_{x'} V[x'] + sum_j beta_j (x_j - x'_j)^+`` for every ``x``
    of the destination grid.  Implemented as ``d`` sequential calls to
    :func:`relax_dimension`; the order of dimensions does not matter because the
    kernel is separable.
    """
    beta = np.asarray(beta, dtype=float)
    d = len(beta)
    if len(src_values) != d or len(dst_values) != d:
        raise ValueError("src_values, dst_values and beta must all have length d")
    out = np.asarray(values_tensor)
    if out.dtype not in (np.float32, np.float64):
        out = out.astype(float)
    for j in range(d):
        out = relax_dimension(out, src_values[j], dst_values[j], float(beta[j]), axis=j)
    return out


class TransitionPlan:
    """Preallocated form of :func:`transition` for one ``(src, dst, beta)`` triple.

    The generic path allocates two scratch tensors per axis per slot and
    recomputes the broadcastable ``beta * values`` vectors every call.  A plan
    hoists all of that: per-axis gather indices, shift vectors and scratch
    buffers are built once, and :meth:`apply` routes each axis through the
    active backend's ``min_plus_axis`` kernel with zero allocations.  The
    kernel's operation sequence matches :func:`relax_dimension` exactly, so a
    plan-produced value tensor is bit-identical to the generic one — callers
    may mix the two paths freely (the streaming DP's checkpointed backtracking
    relies on this).

    Restrictions (``make_transition_plan`` returns ``None`` when violated, and
    callers fall back to :func:`transition`): every destination value must have
    both a power-up predecessor and a power-down successor in the source grid
    (``all_up and all_down`` in plan terms), and :meth:`apply` only accepts
    ``float64`` tensors of the planned source shape.

    The returned tensor aliases an internal buffer: it stays valid until the
    next :meth:`apply` call, and writing into it is safe.  Feeding the previous
    output back in as the next input is also safe — the input is fully consumed
    by the first axis before any buffer it may alias is written (the final-axis
    output ping-pongs between two buffers for the single-axis case) — but the
    input array's contents are undefined after such a call.
    """

    __slots__ = ("_steps", "_final_alt", "src_shape", "dst_shape")

    def __init__(self, steps: List[Tuple], src_shape: Tuple[int, ...], dst_shape: Tuple[int, ...]):
        self._steps = steps
        self._final_alt = np.empty_like(steps[-1][-1])
        self.src_shape = src_shape
        self.dst_shape = dst_shape

    def apply(self, values_tensor: np.ndarray) -> np.ndarray:
        V = values_tensor
        if V.dtype != np.float64 or V.shape != self.src_shape:
            raise ValueError(
                f"plan expects float64 tensor of shape {self.src_shape}, "
                f"got {V.dtype} {V.shape}"
            )
        backend = get_backend()
        steps = self._steps
        cur = V
        last = len(steps) - 1
        for i, step in enumerate(steps):
            (axis, moved, same, bsrc, bdst, up_idx, down_idx,
             shifted, shifted_rev, gather, out) = step
            if i == last and cur is out:
                # the previous output fed back as input: swap in the alternate
                # final buffer (ping-pong); the next call alternates back.
                # Identity is the only aliasing the contract admits — the final
                # step's input is otherwise an internal mid-step buffer.
                out = self._final_alt
                steps[i] = step[:-1] + (out,)
                self._final_alt = step[-1]
            work = cur.swapaxes(axis, -1) if moved else cur
            if same:
                backend.min_plus_axis_same(work, bsrc, bdst, shifted, shifted_rev, out)
            else:
                backend.min_plus_axis(
                    work, bsrc, bdst, up_idx, down_idx, shifted, shifted_rev, gather, out
                )
            cur = out.swapaxes(axis, -1) if moved else out
        return cur


def make_transition_plan(
    src_values: Sequence[np.ndarray],
    dst_values: Sequence[np.ndarray],
    beta: Sequence[float],
) -> Optional[TransitionPlan]:
    """Build a :class:`TransitionPlan`, or ``None`` when the pair is unsupported."""
    beta_arr = np.asarray(beta, dtype=float)
    d = len(beta_arr)
    if d == 0 or len(src_values) != d or len(dst_values) != d:
        return None
    steps: List[Tuple] = []
    in_shape = [len(np.asarray(v)) for v in src_values]
    src_shape = tuple(in_shape)
    for j in range(d):
        src_f, dst_f, up_idx, all_up, _vu, down_idx, all_down, _vd = _relax_plan(
            src_values[j], dst_values[j]
        )
        if not (all_up and all_down):
            return None
        swapped = list(in_shape)
        swapped[j], swapped[-1] = swapped[-1], swapped[j]
        out_shape = tuple(swapped[:-1]) + (len(dst_f),)
        up_c = np.ascontiguousarray(up_idx, dtype=np.intp)
        down_c = np.ascontiguousarray(down_idx, dtype=np.intp)
        # identity gather maps (src and dst value lists equal) route through
        # the backend's elided same-grid kernel — same values, fewer ops
        identity = np.arange(len(dst_f), dtype=np.intp)
        same = len(dst_f) == len(src_f) and np.array_equal(up_c, identity) and np.array_equal(
            down_c, identity
        )
        shifted = np.empty(tuple(swapped))
        steps.append(
            (
                j,
                j != d - 1,
                same,
                np.asarray(beta_arr[j] * src_f, dtype=np.float64),
                np.asarray(beta_arr[j] * dst_f, dtype=np.float64),
                up_c,
                down_c,
                shifted,
                shifted[..., ::-1],
                np.empty(out_shape),
                np.empty(out_shape),
            )
        )
        in_shape[j] = len(dst_f)
    return TransitionPlan(steps, src_shape, tuple(in_shape))


def switching_cost_between(x_prev: np.ndarray, x_next: np.ndarray, beta: np.ndarray) -> float:
    """Switching cost ``S(x_prev, x_next) = sum_j beta_j (x_next_j - x_prev_j)^+``."""
    diff = np.maximum(np.asarray(x_next, dtype=float) - np.asarray(x_prev, dtype=float), 0.0)
    return float(np.sum(diff * np.asarray(beta, dtype=float)))


def switching_cost_tensor(
    src_values: Sequence[np.ndarray],
    x_next: Sequence[int],
    beta: Sequence[float],
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Tensor of switching costs from every source-grid configuration to ``x_next``.

    Used for backwards path reconstruction: the predecessor of ``x_next`` is the
    argmin of ``V_prev + switching_cost_tensor(...)``.  ``out``, when given with
    the right shape, is overwritten and returned instead of allocating a fresh
    tensor — the backward pass of the DP calls this once per slot and reuses a
    single scratch buffer across slots whose grids agree.
    """
    beta = np.asarray(beta, dtype=float)
    d = len(beta)
    shape = tuple(len(np.asarray(v)) for v in src_values)
    if out is not None and out.shape == shape:
        total = out
        total.fill(0.0)
    else:
        total = np.zeros(shape)
    for j in range(d):
        vals = np.asarray(src_values[j], dtype=float)
        per_dim = beta[j] * np.maximum(float(x_next[j]) - vals, 0.0)
        reshape = [1] * d
        reshape[j] = len(vals)
        total += per_dim.reshape(reshape)
    return total


def startup_cost_tensor(dst_values: Sequence[np.ndarray], beta: Sequence[float]) -> np.ndarray:
    """Tensor of switching costs from the empty configuration to every grid point.

    This seeds the dynamic program at the first time slot (``x_0 = 0`` in the
    paper's convention, so every initially active server pays its power-up cost).
    """
    beta = np.asarray(beta, dtype=float)
    d = len(beta)
    shape = tuple(len(np.asarray(v)) for v in dst_values)
    total = np.zeros(shape)
    for j in range(d):
        vals = np.asarray(dst_values[j], dtype=float)
        reshape = [1] * d
        reshape[j] = len(vals)
        total = total + (beta[j] * vals).reshape(reshape)
    return total
