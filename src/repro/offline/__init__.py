"""Offline algorithms: exact shortest-path DP, (1+eps)-approximation, reference solvers."""

from .bruteforce import exhaustive_optimal, pairwise_dp_optimal
from .dp import OfflineResult, operating_cost_tensor, solve_dp
from .fractional import FractionalBound, convex_lower_bound
from .graph_approx import approximation_guarantee, gamma_for_epsilon, solve_approx
from .graph_optimal import build_graph, optimal_cost, shortest_path_schedule, solve_optimal
from .milp import MilpResult, is_linear_instance, solve_lp_relaxation, solve_milp
from .rounding import round_schedule_to_grid, rounding_invariant_holds
from .state_grid import StateGrid, geometric_levels, grid_for_slot

__all__ = [
    "FractionalBound",
    "MilpResult",
    "OfflineResult",
    "StateGrid",
    "approximation_guarantee",
    "build_graph",
    "convex_lower_bound",
    "exhaustive_optimal",
    "gamma_for_epsilon",
    "geometric_levels",
    "grid_for_slot",
    "is_linear_instance",
    "operating_cost_tensor",
    "optimal_cost",
    "pairwise_dp_optimal",
    "round_schedule_to_grid",
    "rounding_invariant_holds",
    "shortest_path_schedule",
    "solve_approx",
    "solve_dp",
    "solve_lp_relaxation",
    "solve_milp",
    "solve_optimal",
]
