"""Optimal offline algorithm (Section 4.1).

The optimal schedule of an instance is a shortest path in the layered graph
``G(I)``: one vertex pair ``(v_up, v_down)`` per time slot and configuration,
an operating-cost edge ``g_t(x)`` between them, power-up edges of weight
``beta_j`` and power-down edges of weight 0 inside a layer, and zero-cost edges
to the next slot.  The DP engine of :mod:`repro.offline.dp` evaluates exactly
this graph with full per-slot grids, in ``O(T * d * prod_j (m_j + 1))`` time —
the runtime stated in the paper (Figure 4 visualises the graph for
``d = 2, T = 2, m = (2, 1)``).

Besides the plain solver this module exposes an explicit ``networkx``
construction of ``G(I)`` (:func:`build_graph`).  It is exponentially more
expensive than the vectorised DP and exists for two purposes: it reproduces
Figure 4 literally, and it provides an independent shortest-path cross-check
used by the test suite.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.instance import ProblemInstance
from ..core.schedule import Schedule
from ..dispatch.allocation import DispatchSolver
from .dp import OfflineResult, operating_cost_tensors, solve_dp
from .state_grid import StateGrid, grid_for_slot

__all__ = ["solve_optimal", "optimal_cost", "build_graph", "shortest_path_schedule"]


def solve_optimal(
    instance: ProblemInstance,
    dispatcher: Optional[DispatchSolver] = None,
    keep_tables: bool = False,
    return_schedule: bool = True,
    checkpoint_every: Optional[int] = None,
    value_dtype=None,
) -> OfflineResult:
    """Compute an optimal schedule for ``instance`` (discrete/integral setting).

    Runtime is proportional to ``T * prod_j (m_{t,j} + 1)``; for large fleets
    use :func:`repro.offline.graph_approx.solve_approx` instead.  Memory is
    ``O(sqrt(T) * prod_j (m_{t,j} + 1))``: long horizons stream the value pass
    with checkpointed backtracking (see :func:`repro.offline.dp.solve_dp` for
    ``checkpoint_every`` / ``value_dtype`` tuning; ``keep_tables=True`` forces
    the classic all-tables pass).
    """
    return solve_dp(
        instance,
        gamma=None,
        dispatcher=dispatcher,
        keep_tables=keep_tables,
        return_schedule=return_schedule,
        checkpoint_every=checkpoint_every,
        value_dtype=value_dtype,
    )


def optimal_cost(instance: ProblemInstance, dispatcher: Optional[DispatchSolver] = None) -> float:
    """Optimal total cost ``C(X^*)`` without reconstructing the schedule."""
    return solve_optimal(instance, dispatcher=dispatcher, return_schedule=False).cost


# --------------------------------------------------------------------------- #
# Explicit graph construction (Figure 4)
# --------------------------------------------------------------------------- #


def build_graph(instance: ProblemInstance, dispatcher: Optional[DispatchSolver] = None):
    """Build the explicit graph ``G(I)`` of Section 4.1 as a ``networkx.DiGraph``.

    Vertices are tuples ``(t, 'up'|'down', x)`` with ``x`` the configuration
    tuple, plus the artificial ``source`` (= ``(0, 'up', 0-vector)``) and
    ``target`` (= ``(T-1, 'down', 0-vector)``) used by the shortest-path query.
    Edge weights follow the paper exactly:

    * ``(t, up, x) -> (t, down, x)`` with weight ``g_t(x)`` (operating cost),
    * ``(t, up, x) -> (t, up, x + e_j)`` with weight ``beta_j`` (power-up),
    * ``(t, down, x + e_j) -> (t, down, x)`` with weight 0 (power-down),
    * ``(t, down, x) -> (t+1, up, x)`` with weight 0 (next slot).

    Only intended for small instances (the vertex count is
    ``2 T prod_j (m_j + 1)``).
    """
    import networkx as nx

    dispatcher = dispatcher or DispatchSolver(instance)
    graph = nx.DiGraph()
    T = instance.T
    grids = [grid_for_slot(instance, t) for t in range(T)]
    # one batched dispatch per distinct grid instead of one per slot; the
    # flattened tensor rows are in configs() order (C order, see StateGrid)
    g_tensors = operating_cost_tensors(instance, grids, dispatcher)
    for t in range(T):
        grid = grids[t]
        configs = grid.configs()
        costs = g_tensors[t].reshape(-1)
        counts = instance.counts_at(t)
        for config, cost in zip(configs, costs):
            x = tuple(int(v) for v in config)
            graph.add_edge((t, "up", x), (t, "down", x), weight=float(cost))
            for j in range(instance.d):
                if x[j] < counts[j]:
                    x_up = tuple(v + 1 if k == j else v for k, v in enumerate(x))
                    graph.add_edge((t, "up", x), (t, "up", x_up), weight=float(instance.beta[j]))
                    graph.add_edge((t, "down", x_up), (t, "down", x), weight=0.0)
            if t + 1 < T:
                next_counts = instance.counts_at(t + 1)
                if all(x[j] <= next_counts[j] for j in range(instance.d)):
                    graph.add_edge((t, "down", x), (t + 1, "up", x), weight=0.0)
    return graph


def shortest_path_schedule(
    instance: ProblemInstance,
    dispatcher: Optional[DispatchSolver] = None,
) -> Tuple[Schedule, float]:
    """Solve the instance by an explicit shortest-path query on ``G(I)``.

    This mirrors the paper's description verbatim and serves as an independent
    cross-check of the vectorised DP.  Only use it on small instances.
    """
    import networkx as nx

    graph = build_graph(instance, dispatcher)
    zero = tuple(0 for _ in range(instance.d))
    source = (0, "up", zero)
    target = (instance.T - 1, "down", zero)
    cost, path = nx.single_source_dijkstra(graph, source, target, weight="weight")
    configs = np.zeros((instance.T, instance.d), dtype=int)
    for node in path:
        t, kind, x = node
        if kind == "down":
            configs[t] = np.array(x, dtype=int)
        elif kind == "up":
            # the configuration of a slot is the one used on its operating edge;
            # it is recorded when the 'down' copy of the same slot is visited.
            pass
    # The path's 'down' vertices descend to the zero vector inside a layer; the
    # configuration actually used in slot t is the first 'down' vertex visited
    # in that layer (the endpoint of the operating edge).
    seen = set()
    for node_from, node_to in zip(path, path[1:]):
        t_from, kind_from, x_from = node_from
        t_to, kind_to, x_to = node_to
        if kind_from == "up" and kind_to == "down" and t_from == t_to and x_from == x_to:
            configs[t_from] = np.array(x_from, dtype=int)
            seen.add(t_from)
    if len(seen) != instance.T:
        raise RuntimeError("shortest path did not traverse an operating edge in every slot")
    return Schedule(configs), float(cost)
