"""(1 + eps)-approximation algorithm (Section 4.2, Theorems 16 and 21).

The approximation restricts the number of active servers of every type to the
geometrically spaced set ``M^gamma_j`` and runs the same shortest-path /
dynamic-programming computation on the reduced graph ``G^gamma``.  Theorem 16
shows that the schedule corresponding to the shortest path in ``G^gamma`` costs
at most ``(2*gamma - 1) * C(X^*)``; with ``gamma = 1 + eps/2`` this is the
``(1 + eps)``-approximation of Theorem 21, computed in
``O(T * eps^{-d} * prod_j log m_j)`` time.

Section 4.3 extends the construction to time-dependent fleet sizes ``m_{t,j}``
by simply building the reduced grid per slot; this module supports that
transparently through :func:`repro.offline.state_grid.grid_for_slot`.
"""

from __future__ import annotations

from typing import Optional

from ..core.instance import ProblemInstance
from ..dispatch.allocation import DispatchSolver
from .dp import OfflineResult, solve_dp

__all__ = ["solve_approx", "gamma_for_epsilon", "approximation_guarantee"]


def gamma_for_epsilon(epsilon: float) -> float:
    """The grid-spacing parameter ``gamma = 1 + eps/2`` used by Theorem 21."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return 1.0 + epsilon / 2.0


def approximation_guarantee(gamma: float) -> float:
    """The worst-case approximation factor ``2*gamma - 1`` of Theorem 16."""
    if gamma <= 1.0:
        raise ValueError("gamma must be > 1")
    return 2.0 * gamma - 1.0


def solve_approx(
    instance: ProblemInstance,
    epsilon: Optional[float] = None,
    gamma: Optional[float] = None,
    dispatcher: Optional[DispatchSolver] = None,
    keep_tables: bool = False,
    return_schedule: bool = True,
    checkpoint_every: Optional[int] = None,
    value_dtype=None,
) -> OfflineResult:
    """Compute a ``(2*gamma - 1)``-approximate schedule on the reduced grids.

    Exactly one of ``epsilon`` and ``gamma`` may be given; ``epsilon`` is
    translated to ``gamma = 1 + eps/2`` so that the guarantee is ``1 + eps``.
    When neither is given, ``epsilon = 1`` (a 2-approximation) is used.

    The returned :class:`~repro.offline.dp.OfflineResult` carries the ``gamma``
    that was used; ``approximation_guarantee(result.gamma)`` is the proven
    worst-case factor, which the benchmarks compare against the measured ratio.
    ``checkpoint_every`` / ``value_dtype`` tune the streaming value pass on
    long horizons exactly as in :func:`repro.offline.dp.solve_dp` — combined
    with the geometric grids this is what makes fleets of ``m_j ~ 10^4``
    servers over tens of thousands of slots fit in memory.
    """
    if epsilon is not None and gamma is not None:
        raise ValueError("give either epsilon or gamma, not both")
    if gamma is None:
        gamma = gamma_for_epsilon(1.0 if epsilon is None else epsilon)
    if gamma <= 1.0:
        raise ValueError("gamma must be > 1")
    return solve_dp(
        instance,
        gamma=gamma,
        dispatcher=dispatcher,
        keep_tables=keep_tables,
        return_schedule=return_schedule,
        checkpoint_every=checkpoint_every,
        value_dtype=value_dtype,
    )
