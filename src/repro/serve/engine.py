"""Multi-tenant serve engine and the streaming-equivalence verifier.

:class:`ServeEngine` multiplexes many concurrent
:class:`~repro.serve.session.ControllerSession` objects — one per
fleet/tenant — over shared :class:`~repro.serve.session.ServeCache` state.
Tenants whose fleets are the *same objects* (one geometry, many demand
streams) are grouped onto one cache automatically, so the dispatch dual
bisections and whole-grid tensors behind their ticks are computed once per
distinct demand level across the whole engine, not once per tenant; the
resulting cache-hit counters and wall times are what ``repro serve bench``
records in ``BENCH_serve.json``.

:func:`verify_replay` is the subsystem's correctness gate: it replays an
instance through a session — optionally across a mid-stream
checkpoint/restore round-trip — and checks the streamed schedule and
cumulative cost against batch :func:`~repro.online.base.run_online` with an
identically-built algorithm.  ``repro serve smoke`` (the ``make serve-smoke``
CI gate) runs it over every registered scenario family.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..core.instance import ProblemInstance
from ..online.base import run_online
from .chaos import ChaosFeed
from .feed import InstanceFeed, TraceFeed
from .metrics import MetricsRegistry
from .session import (
    ControllerSession,
    ServeCache,
    build_serve_algorithm,
    fleet_signature,
    save_checkpoint,
)
from .telemetry import TelemetryWriter, summarise_sessions

__all__ = ["ServeEngine", "verify_replay"]


class _Tenant:
    """One registered (session, feed) pair plus its playback iterator."""

    def __init__(self, session: ControllerSession, feed: TraceFeed, speed: Optional[float]):
        self.session = session
        self.feed = feed
        self.iterator = feed.play(speed)
        self.done = False


class ServeEngine:
    """Multiplexes concurrent streaming sessions over shared dispatch caches.

    ``share_caches=True`` (default) groups tenants by fleet geometry: every
    tenant whose ``server_types`` tuple carries the same fleet objects joins
    one :class:`ServeCache`, so N tenants over one geometry cost far less
    than N isolated sessions.  ``share_caches=False`` gives every tenant a
    private cache — the isolation baseline the serve benchmark compares
    against.
    """

    def __init__(
        self,
        share_caches: bool = True,
        warm_start: bool = False,
        *,
        ledger_budget: Optional[int] = None,
        tensor_budget_bytes: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.share_caches = bool(share_caches)
        self.warm_start = bool(warm_start)
        #: LRU bounds forwarded to every cache the engine creates — the knobs
        #: that keep a month-scale multi-tenant process flat in memory (see
        #: :class:`ServeCache`); ``None`` leaves the memos unbounded.
        self.ledger_budget = None if ledger_budget is None else int(ledger_budget)
        self.tensor_budget_bytes = (
            None if tensor_budget_bytes is None else int(tensor_budget_bytes)
        )
        #: One registry for the whole engine: every cache and session it
        #: creates lands its series here, so :meth:`report` exposes a single
        #: labelled snapshot across tenants and caches.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._caches: Dict[tuple, ServeCache] = {}
        self._cache_seq = 0
        self._tenants: Dict[str, _Tenant] = {}

    # ------------------------------------------------------------ registration
    def _build_cache(self, server_types) -> ServeCache:
        cache = ServeCache(
            server_types,
            warm_start=self.warm_start,
            ledger_budget=self.ledger_budget,
            tensor_budget_bytes=self.tensor_budget_bytes,
            metrics=self.metrics,
            metrics_label=f"cache{self._cache_seq}",
        )
        self._cache_seq += 1
        return cache

    def cache_for(self, server_types) -> ServeCache:
        """The shared cache of a fleet geometry (created on first use)."""
        if not self.share_caches:
            return self._build_cache(server_types)
        key = fleet_signature(server_types)
        cache = self._caches.get(key)
        if cache is None:
            cache = self._build_cache(server_types)
            self._caches[key] = cache
        return cache

    def prewarm(self, levels) -> int:
        """Precompute quantised solution tables on every registered cache.

        ``levels`` is the expected demand alphabet (e.g. the bin values of a
        ``quantise_trace``-binned stream).  Each tenant cache runs
        :meth:`ServeCache.prewarm`, which installs the whole-grid tensor and
        every per-configuration dispatch solution for each level through the
        exact cold code path — steady-state ticks then reduce to table
        gathers.  Returns the number of caches prewarmed.  Call after
        registering tenants (an engine with no tenants has no caches yet).
        """
        caches = self.caches
        for cache in caches:
            cache.prewarm(levels)
        return len(caches)

    def add_tenant(
        self,
        name: str,
        algorithm,
        feed: TraceFeed,
        server_types=None,
        *,
        track_regret: bool = False,
        speed: Optional[float] = None,
        chaos=None,
        degradation: Optional[str] = None,
        history: bool = True,
    ) -> ControllerSession:
        """Register a tenant: one session driven by one feed.

        ``server_types`` defaults to the feed's fleet (instance/scenario
        feeds carry one); demand-only feeds need it explicitly.  ``chaos``
        takes an event plan (anything :meth:`EventPlan.parse` accepts) and
        wraps the feed in a :class:`~repro.serve.chaos.ChaosFeed` — passing
        the *same plan object* to several tenants injects correlated
        cross-tenant bursts.  ``degradation`` defaults to ``"shed"`` for
        chaos tenants (faults must account, not crash) and ``"strict"``
        otherwise.
        """
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} is already registered")
        if server_types is None:
            server_types = feed.server_types
        if server_types is None:
            raise ValueError(
                f"tenant {name!r}: the feed carries no fleet; pass server_types explicitly"
            )
        if chaos is not None:
            feed = ChaosFeed(
                feed, chaos, server_types=server_types,
                metrics=self.metrics, tenant=name,
            )
        if degradation is None:
            degradation = "shed" if chaos is not None else "strict"
        session = ControllerSession(
            algorithm,
            cache=self.cache_for(server_types),
            track_regret=track_regret,
            degradation=degradation,
            history=history,
            name=name,
        )
        self._tenants[name] = _Tenant(session, feed, speed)
        return session

    def roundtrip_tenant(self, name: str) -> ControllerSession:
        """Checkpoint/restore a live tenant in place (mid-stream round-trip).

        Serialises the tenant's session through actual JSON text and swaps in
        the restored session (warm shared cache kept); the tenant's feed
        iterator is untouched, so a subsequent :meth:`run` continues exactly
        where the stream left off.  This is the restart the batched-vs-
        sequential equivalence gates exercise mid-stream.
        """
        tenant = self._tenants[name]
        tenant.session = tenant.session.checkpoint_roundtrip(reuse_cache=True)
        return tenant.session

    def session(self, name: str) -> ControllerSession:
        return self._tenants[name].session

    @property
    def sessions(self) -> List[ControllerSession]:
        return [tenant.session for tenant in self._tenants.values()]

    @property
    def caches(self) -> List[ServeCache]:
        caches = []
        for tenant in self._tenants.values():
            if tenant.session.cache not in caches:
                caches.append(tenant.session.cache)
        return caches

    # --------------------------------------------------------------- execution
    def run(
        self,
        max_ticks: Optional[int] = None,
        telemetry: Optional[TelemetryWriter] = None,
        checkpoint_dir=None,
        checkpoint_every: int = 0,
        finalize: bool = True,
    ) -> dict:
        """Drain all feeds, interleaving tenants tick by tick (round-robin).

        Interleaving (rather than replaying tenants back to back) is what a
        live serving process does — all tenants advance together — and it
        maximises cross-tenant cache reuse: the first tenant to reach a
        demand level pays its solve, every later tenant's tick hits the memo.
        Returns the engine report (per-tenant summaries, pooled latency
        percentiles, sharing counters).

        ``checkpoint_dir`` + ``checkpoint_every`` enable the periodic
        checkpoint cadence the fabric's crash recovery restores from: every
        ``checkpoint_every`` ticks (and once at completion) each tenant's
        session is written to ``<dir>/<tenant>.ckpt.json`` atomically, with
        the previous intact checkpoint rotated to ``.prev`` (see
        :func:`~repro.serve.session.save_checkpoint`).
        """
        writer = telemetry or TelemetryWriter(None)
        cadence = int(checkpoint_every) if checkpoint_dir is not None else 0
        checkpoint_dir = None if checkpoint_dir is None else Path(checkpoint_dir)

        def checkpoint(name: str, tenant: _Tenant) -> None:
            if checkpoint_dir is not None:
                save_checkpoint(
                    checkpoint_dir / f"{name}.ckpt.json", tenant.session.checkpoint()
                )

        active = list(self._tenants.items())
        started = time.perf_counter()
        round_index = 0
        while active and (max_ticks is None or round_index < max_ticks):
            still_active = []
            for name, tenant in active:
                tick = next(tenant.iterator, None)
                if tick is None:
                    if not tenant.done:
                        tenant.done = True
                        tenant.session.finish()
                        checkpoint(name, tenant)
                    continue
                state = tenant.session.observe(
                    tick.demand, cost_row=tick.cost_row, counts=tick.counts
                )
                writer.write(state.as_row(), tenant=name)
                if cadence and tenant.session.ticks % cadence == 0:
                    checkpoint(name, tenant)
                still_active.append((name, tenant))
            active = still_active
            round_index += 1
        if finalize:
            # ``finalize=False`` leaves undrained tenants un-finished so a
            # later run() call (e.g. after a mid-stream roundtrip_tenant)
            # resumes the stream instead of double-finishing the algorithms
            for name, tenant in self._tenants.items():
                if not tenant.done:
                    tenant.done = True
                    tenant.session.finish()
                    checkpoint(name, tenant)
        wall = time.perf_counter() - started
        return self.report(wall_seconds=wall)

    def report(self, wall_seconds: Optional[float] = None) -> dict:
        """Engine-level summary: totals, pooled latencies, sharing counters.

        ``sharing`` carries every cache's full counter dict (including the
        ``tensor_evictions`` / ``ledger_evictions`` LRU pressure gauges);
        ``cache_totals`` sums the numeric counters across caches so eviction
        behaviour and memo residency are observable at a glance without
        iterating per-cache rows.  ``metrics`` is the engine registry's full
        labelled snapshot (schema-versioned; see
        :meth:`~repro.serve.metrics.MetricsRegistry.snapshot`).
        """
        report = summarise_sessions(self.sessions, wall_seconds=wall_seconds)
        report["tenant_summaries"] = [s.summary() for s in self.sessions]
        caches = self.caches
        report["caches"] = len(caches)
        per_cache = [cache.counters() for cache in caches]
        report["sharing"] = per_cache
        totals: Dict[str, float] = {}
        for counters in per_cache:
            for key, value in counters.items():
                if key == "cache_hit_rate":  # a ratio — summing it is noise
                    continue
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                totals[key] = totals.get(key, 0) + value
        report["cache_totals"] = totals
        report["metrics"] = self.metrics.snapshot()
        return report


# --------------------------------------------------------------------------- #
# Streaming-equivalence verification
# --------------------------------------------------------------------------- #


def verify_replay(
    instance: ProblemInstance,
    algorithm="A",
    checkpoint_at: Optional[int] = None,
    tolerance: float = 1e-9,
    track_regret: bool = False,
) -> dict:
    """Check that streaming replay reproduces batch ``run_online`` exactly.

    Replays ``instance`` tick by tick through a :class:`ControllerSession`
    (built by :func:`build_serve_algorithm`), optionally serialising the
    session to a JSON checkpoint after ``checkpoint_at`` ticks and restoring
    it into a brand-new session before streaming the remainder.  The streamed
    schedule must equal the batch schedule *configuration for configuration*
    and the cumulative cost must match the batch total within ``tolerance``.

    Returns a JSON-safe report row; raises :class:`AssertionError` on any
    mismatch (this function *is* the ``make serve-smoke`` gate) and
    :class:`ValueError` when ``checkpoint_at`` lies outside ``[1, T)`` — an
    out-of-range checkpoint would silently verify nothing about the
    restore path.
    """
    if checkpoint_at is not None and not 1 <= checkpoint_at < instance.T:
        raise ValueError(
            f"checkpoint_at must be in [1, T) = [1, {instance.T}), got {checkpoint_at} "
            "(the round-trip would never fire)"
        )

    batch = run_online(instance, build_serve_algorithm(algorithm))

    feed = InstanceFeed(instance)
    session = ControllerSession(
        algorithm, instance.server_types, track_regret=track_regret
    )
    checkpointed = False
    for tick in feed:
        if checkpoint_at is not None and tick.t == checkpoint_at:
            session = session.checkpoint_roundtrip()
            checkpointed = True
        session.observe(tick.demand, cost_row=tick.cost_row, counts=tick.counts)
    session.finish()

    streamed = session.schedule
    if streamed.x.shape != batch.schedule.x.shape or not np.array_equal(
        streamed.x, batch.schedule.x
    ):
        mismatches = (
            int(np.sum(np.any(streamed.x != batch.schedule.x, axis=1)))
            if streamed.x.shape == batch.schedule.x.shape
            else -1
        )
        raise AssertionError(
            f"{instance.name}: streamed schedule deviates from batch run_online "
            f"({mismatches} mismatching slots)"
        )
    cost_deviation = abs(session.cumulative_cost - batch.cost)
    if not cost_deviation <= tolerance:
        raise AssertionError(
            f"{instance.name}: streamed cumulative cost {session.cumulative_cost!r} "
            f"deviates from batch total {batch.cost!r} by {cost_deviation:.3e} "
            f"(tolerance {tolerance:g})"
        )
    return {
        "instance": instance.name,
        "algorithm": session.algorithm.name,
        "ticks": session.ticks,
        "checkpointed": checkpointed,
        "checkpoint_at": checkpoint_at if checkpointed else None,
        "cost": session.cumulative_cost,
        "batch_cost": batch.cost,
        "cost_deviation": cost_deviation,
        "latency": session.latency_summary(),
        "ok": True,
    }
