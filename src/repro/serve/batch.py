"""Fleet-batched multi-tenant ticks: vectorised cross-tenant dispatch.

:class:`ServeEngine.run` advances tenants one ``session.observe`` at a time —
10k tenants pay 10k interpreter round-trips per round even when every one of
them resolves to the same quantised solution table.  This module applies the
PR-1 ``solve_block`` idea one level up, **across tenants**:

* Each round, active tenants are grouped into **cohorts** keyed by
  ``(cache identity, decider kind, cost-row signature, counts signature)`` —
  the same keys :class:`~repro.serve.session.ServeCache` and
  :class:`~repro.dispatch.tables.SolutionTable` already dedup on.
* A cohort's demands become one vector.  Decisions for table-driven
  algorithms (``reactive``, ``follow-demand``, ``all-on``) are resolved with a
  single gather from a per-cohort decision table plus one vectorised
  argmin/switching-cost computation, then committed per tenant through
  :meth:`ControllerSession.observe_batch` — the pure-state-update half of the
  tick, so session state is *bit-identical* to a sequential replay.
* Everything else — stateful DP algorithms (A/B/C/LCP), regret-tracked
  sessions, custom algorithm objects, invalid or strict-infeasible ticks, and
  cohort members whose demand level misses a saturated table — falls back to
  the existing per-tenant ``observe`` slow path, which is the sequential
  engine verbatim.

Bit-identity is by construction, not by tolerance: decision-cost rows are
fetched through ``dispatcher.solve_grid(vt, float_configs)`` — the exact
memoised call sequential ``Reactive.step``/``FollowDemand.step`` make via
``slot.operating_cost`` — and committed operating costs/loads come from the
same memoised :meth:`ServeCache.solve_config` results, so a batched run
returns the *identical float objects* a sequential run would.  The vectorised
switching computation ``max(x - prev, 0) · beta`` reduces over the same axis
in the same order as the sequential per-tenant expression.

An optional **feed pump** overlaps feed I/O with the batched solve: a small
thread pool prefetches upcoming ticks from slow feeds (``JsonlFeed``, paced
time-warp replays) into bounded per-tenant queues with backpressure, so the
engine's round loop consumes from memory while producers block on I/O or
pacing sleeps.  Feeds stay single-owner (one worker per tenant iterator);
determinism is untouched because the pump reorders *time*, never ticks.

``verify_batched`` is the correctness gate: batched vs sequential engines over
every registered scenario family — including chaos injection and a mid-stream
checkpoint/restore round-trip — must produce ``np.array_equal`` schedules,
equal SLA counters and ≤1e-9 cumulative-cost deviation.
"""

from __future__ import annotations

import queue
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..offline.state_grid import StateGrid
from ..online.baselines import AllOn, FollowDemand, Reactive
from .engine import ServeEngine, _Tenant
from .session import ControllerSession, ServeCache, save_checkpoint
from .telemetry import TelemetryWriter

__all__ = ["BatchedServeEngine", "FeedPump", "verify_batched"]

#: Decision-table growth bound per cohort: beyond this many distinct demand
#: levels the table stops installing rows (continuous-demand streams would
#: otherwise grow it without bound) and unseen levels take the per-tenant
#: fallback path instead.
DEFAULT_TABLE_BUDGET = 4096


def _decider_kind(session: ControllerSession) -> Optional[str]:
    """Which vectorised decider (if any) can replace ``algorithm.step``.

    Exact-type checks on purpose: a subclass may override ``step`` and must
    fall back.  Regret-tracked sessions always fall back — the tracker needs
    the per-tick :class:`SlotInfo`.  ``gamma``-reduced baselines fall back
    too (the vectorised tables enumerate the full grid, matching the
    registry-built ``Reactive()``/``FollowDemand()`` exactly).
    """
    if session._regret_tracker is not None:
        return None
    algorithm = session.algorithm
    cls = type(algorithm)
    if cls is Reactive:
        return "reactive" if algorithm.gamma is None else None
    if cls is FollowDemand:
        return "follow-demand" if algorithm.gamma is None else None
    if cls is AllOn:
        return "all-on"
    return None


class _CohortTable:
    """Per-(cache, cost row, counts) decision table for vectorised argmins.

    Rows are keyed by exact demand value (like :class:`SolutionTable`) and
    hold the ``(n,)`` operating-cost row over the cohort's configuration set,
    fetched through the same memoised ``solve_grid`` call the sequential
    baselines issue — a gathered row is the identical array content a
    sequential ``slot.operating_cost(configs)`` returns.  Ledger slots are
    *not* cached here: under ``ledger_budget`` the cache recycles slot
    indices, so the engine re-resolves ``vt`` per round through
    ``virtual_slot`` (which transparently re-appends evicted levels).
    """

    __slots__ = (
        "cache", "row", "counts_t", "capacity", "configs", "fconfigs",
        "level_index", "cost_rows", "_cost_matrix", "best_idx", "budget",
        "installs",
    )

    def __init__(self, cache: ServeCache, row, counts_t, budget: int):
        self.cache = cache
        self.row = row  # None for the base cost row
        self.counts_t = counts_t
        stream = cache.stream
        self.capacity = float(np.sum(counts_t * stream.zmax))
        grid = StateGrid.full(counts_t)
        self.configs = grid.configs()
        # sequential ``SlotInfo.operating_cost`` converts configs to float64
        # before evaluating; the same content must reach ``solve_grid`` so the
        # block-cache key (shape, dtype, bytes) lands on the same memo entry
        self.fconfigs = np.ascontiguousarray(self.configs, dtype=float)
        self.fconfigs.setflags(write=False)
        self.level_index: Dict[float, int] = {}
        self.cost_rows: List[np.ndarray] = []
        self._cost_matrix: Optional[np.ndarray] = None
        self.best_idx: Dict[int, int] = {}  # level row -> argmin (follow-demand)
        self.budget = int(budget)
        self.installs = 0

    def level_row(self, served: float, vt: int) -> Optional[int]:
        """Table row index of a demand level, installing it on first sight.

        Returns ``None`` once the table is saturated (``budget`` levels) and
        the level is unseen — the caller routes those members to the
        per-tenant fallback.
        """
        idx = self.level_index.get(served)
        if idx is not None:
            return idx
        if len(self.cost_rows) >= self.budget:
            return None
        # the exact call sequential Reactive/FollowDemand make per tick
        costs, _ = self.cache.dispatcher.solve_grid(vt, self.fconfigs)
        idx = len(self.cost_rows)
        self.level_index[served] = idx
        self.cost_rows.append(costs)
        self._cost_matrix = None
        self.installs += 1
        return idx

    def cost_matrix(self) -> np.ndarray:
        """The stacked ``(L, n)`` cost rows (rebuilt only when levels grew)."""
        if self._cost_matrix is None or len(self._cost_matrix) != len(self.cost_rows):
            self._cost_matrix = np.vstack(self.cost_rows)
        return self._cost_matrix


class FeedPump:
    """Thread-pool feed prefetcher with bounded per-tenant backpressure.

    Each worker owns a disjoint subset of tenant iterators (feed iterators
    are not thread-safe, so ownership is static) and keeps every owned
    tenant's queue topped up to ``prefetch`` ticks; a full queue simply skips
    to the next owned tenant — that bound *is* the backpressure, keeping
    prefetch memory flat at ``O(tenants × prefetch)`` ticks.  Pacing sleeps
    (``feed.play(speed)``) and JSONL parsing thus happen on pump threads while
    the engine's round loop runs the batched solve.

    The consumer side is :meth:`next_tick`: blocking, in tick order, one
    sentinel ``None`` at stream end — exactly the contract of
    ``next(iterator, None)`` in the engine loop, which is why pumping changes
    scheduling latency but never schedules.
    """

    _DONE = object()

    def __init__(self, tenants, prefetch: int = 8, workers: int = 4):
        if int(prefetch) < 1:
            raise ValueError(f"prefetch must be >= 1, got {prefetch}")
        self.prefetch = int(prefetch)
        self._queues: Dict[str, queue.Queue] = {}
        self._stop = threading.Event()
        self._wakeups: List[threading.Event] = []
        self._threads: List[threading.Thread] = []
        self.prefetched = 0
        self.max_buffered = 0
        names = list(tenants)
        workers = max(1, min(int(workers), len(names))) if names else 0
        shards: List[list] = [[] for _ in range(workers)]
        for i, name in enumerate(names):
            self._queues[name] = queue.Queue(maxsize=self.prefetch)
            shards[i % workers].append((name, tenants[name]))
        self._lock = threading.Lock()
        for shard in shards:
            wakeup = threading.Event()
            thread = threading.Thread(
                target=self._produce, args=(shard, wakeup), daemon=True
            )
            self._wakeups.append(wakeup)
            self._threads.append(thread)

    def start(self) -> "FeedPump":
        for thread in self._threads:
            thread.start()
        return self

    def _produce(self, shard, wakeup: threading.Event) -> None:
        pending = {name: tenant.iterator for name, tenant in shard}
        while pending and not self._stop.is_set():
            progressed = False
            for name in list(pending):
                if self._stop.is_set():
                    return
                q = self._queues[name]
                if q.full():
                    continue
                tick = next(pending[name], self._DONE)
                if tick is self._DONE:
                    q.put(self._DONE)
                    del pending[name]
                else:
                    q.put(tick)
                    with self._lock:
                        self.prefetched += 1
                        depth = q.qsize()
                        if depth > self.max_buffered:
                            self.max_buffered = depth
                progressed = True
            if not progressed:
                # every owned queue is full: sleep until a consumer drains one
                wakeup.wait(timeout=0.05)
                wakeup.clear()

    def next_tick(self, name: str):
        """The tenant's next tick (blocking), or ``None`` at stream end."""
        item = self._queues[name].get()
        for wakeup in self._wakeups:
            wakeup.set()
        return None if item is self._DONE else item

    def stop(self) -> Dict[str, list]:
        """Stop producers and hand back the still-buffered (unconsumed) ticks.

        Buffered ticks were already pulled off their iterators, so an engine
        stopping early (``max_ticks`` with ``finalize=False``) must requeue
        them ahead of the iterator or they would vanish on resume.  Returns
        ``{tenant: [ticks...]}`` in arrival order; stream-end sentinels are
        dropped (the iterator re-yields exhaustion for free).  Producers mid-
        pacing-sleep are abandoned after a join timeout — with paced feeds an
        early stop may therefore lose the tick in flight; unpaced feeds (every
        equivalence gate) join promptly and lose nothing.
        """
        self._stop.set()
        for wakeup in self._wakeups:
            wakeup.set()
        for thread in self._threads:
            thread.join(timeout=2.0)
        leftovers: Dict[str, list] = {}
        for name, q in self._queues.items():
            items = []
            while True:
                try:
                    item = q.get_nowait()
                except queue.Empty:
                    break
                if item is not self._DONE:
                    items.append(item)
            if items:
                leftovers[name] = items
        return leftovers

    def counters(self) -> dict:
        return {
            "prefetched": self.prefetched,
            "max_buffered": self.max_buffered,
            "workers": len(self._threads),
            "prefetch_bound": self.prefetch,
        }


class BatchedServeEngine(ServeEngine):
    """A :class:`ServeEngine` whose round loop resolves cohorts vectorised.

    Same registration API and same results — schedules, costs and SLA
    counters are bit-identical to the sequential engine (``verify_batched``
    gates this across every registered scenario family) — but each round
    groups tenants into cohorts and replaces their per-tenant
    ``algorithm.step`` + solve with one table gather + vectorised argmin +
    per-tenant :meth:`ControllerSession.observe_batch` commit.

    Parameters beyond :class:`ServeEngine`:

    overlap:
        Run a :class:`FeedPump` so feed I/O and pacing sleeps overlap the
        batched solve (``prefetch`` ticks per tenant buffered, ``pump_workers``
        threads).
    table_budget:
        Max distinct demand levels per cohort decision table; unseen levels
        beyond it fall back per-tenant (bounded memory on continuous streams).
    """

    def __init__(
        self,
        share_caches: bool = True,
        warm_start: bool = False,
        *,
        ledger_budget: Optional[int] = None,
        tensor_budget_bytes: Optional[int] = None,
        overlap: bool = False,
        prefetch: int = 8,
        pump_workers: int = 4,
        table_budget: int = DEFAULT_TABLE_BUDGET,
        metrics=None,
    ):
        super().__init__(
            share_caches,
            warm_start,
            ledger_budget=ledger_budget,
            tensor_budget_bytes=tensor_budget_bytes,
            metrics=metrics,
        )
        self.overlap = bool(overlap)
        self.prefetch = int(prefetch)
        self.pump_workers = int(pump_workers)
        self.table_budget = int(table_budget)
        self._tables: Dict[tuple, _CohortTable] = {}
        # ticks prefetched by a pump but unconsumed when an early-stopped run
        # ended — replayed first on the next run() so no tick is ever dropped
        self._pending_ticks: Dict[str, list] = {}
        # batching counters are engine-level registry series (unlabelled —
        # one engine, one registry); the historical attribute names survive
        # as read-only properties below
        self._c_batched_ticks = self.metrics.counter("batched_ticks")
        self._c_fallback_ticks = self.metrics.counter("fallback_ticks")
        self._c_table_fallbacks = self.metrics.counter("table_fallbacks")
        self._c_cohort_rounds = self.metrics.counter("cohort_rounds")
        self._c_rounds = self.metrics.counter("rounds")
        self._pump_counters: Optional[dict] = None

    @property
    def batched_ticks(self) -> int:
        return int(self._c_batched_ticks.value)

    @property
    def fallback_ticks(self) -> int:
        return int(self._c_fallback_ticks.value)

    @property
    def table_fallbacks(self) -> int:
        return int(self._c_table_fallbacks.value)

    @property
    def cohort_rounds(self) -> int:
        return int(self._c_cohort_rounds.value)

    @property
    def rounds(self) -> int:
        return int(self._c_rounds.value)

    # --------------------------------------------------------------- execution
    def run(
        self,
        max_ticks: Optional[int] = None,
        telemetry: Optional[TelemetryWriter] = None,
        checkpoint_dir=None,
        checkpoint_every: int = 0,
        finalize: bool = True,
    ) -> dict:
        """Drain all feeds with cohort-batched rounds (see the class docstring).

        Semantics match :meth:`ServeEngine.run`: round-robin rounds, per-tenant
        ``finish`` + final checkpoint at stream end, periodic checkpoints every
        ``checkpoint_every`` ticks, ``finalize=False`` to leave streams
        resumable.  Telemetry rows are grouped by cohort within a round rather
        than strict registration order.
        """
        writer = telemetry or TelemetryWriter(None)
        emit = writer.active
        cadence = int(checkpoint_every) if checkpoint_dir is not None else 0
        checkpoint_dir = None if checkpoint_dir is None else Path(checkpoint_dir)

        def checkpoint(name: str, tenant: _Tenant) -> None:
            if checkpoint_dir is not None:
                save_checkpoint(
                    checkpoint_dir / f"{name}.ckpt.json", tenant.session.checkpoint()
                )

        pump: Optional[FeedPump] = None
        if self.overlap:
            pump = FeedPump(
                self._tenants, prefetch=self.prefetch, workers=self.pump_workers
            ).start()

        active = list(self._tenants.items())
        started = time.perf_counter()
        round_index = 0
        try:
            while active and (max_ticks is None or round_index < max_ticks):
                arrivals = []
                still_active = []
                for name, tenant in active:
                    buffered = self._pending_ticks.get(name)
                    if buffered:
                        tick = buffered.pop(0)
                        if not buffered:
                            del self._pending_ticks[name]
                    elif pump is not None:
                        tick = pump.next_tick(name)
                    else:
                        tick = next(tenant.iterator, None)
                    if tick is None:
                        if not tenant.done:
                            tenant.done = True
                            tenant.session.finish()
                            checkpoint(name, tenant)
                        continue
                    arrivals.append((name, tenant, tick))
                    still_active.append((name, tenant))
                if arrivals:
                    self._run_round(arrivals, writer, emit, cadence, checkpoint)
                    self._c_rounds.inc()
                active = still_active
                round_index += 1
        finally:
            if pump is not None:
                leftovers = pump.stop()
                for name, items in leftovers.items():
                    self._pending_ticks.setdefault(name, []).extend(items)
                self._pump_counters = pump.counters()
        if finalize:
            for name, tenant in self._tenants.items():
                if not tenant.done:
                    tenant.done = True
                    tenant.session.finish()
                    checkpoint(name, tenant)
        wall = time.perf_counter() - started
        return self.report(wall_seconds=wall)

    # ------------------------------------------------------------------ rounds
    def _run_round(self, arrivals, writer, emit, cadence, checkpoint) -> None:
        """Partition one round's arrivals into cohorts and resolve each."""
        cohorts: Dict[tuple, list] = {}
        fallback: list = []
        for name, tenant, tick in arrivals:
            session = tenant.session
            kind = _decider_kind(session)
            if kind is None:
                fallback.append((name, tenant, tick))
                continue
            row = tick.cost_row
            row_key = None if row is None else tuple(row)
            counts = tick.counts
            counts_key = (
                None if counts is None else tuple(int(v) for v in np.asarray(counts))
            )
            key = (id(session.cache), kind, row_key, counts_key)
            try:
                members = cohorts.get(key)
            except TypeError:  # unhashable exotic cost row: per-tenant path
                fallback.append((name, tenant, tick))
                continue
            if members is None:
                cohorts[key] = [(name, tenant, tick)]
            else:
                members.append((name, tenant, tick))

        for key, members in cohorts.items():
            self._run_cohort(key, members, fallback, writer, emit, cadence, checkpoint)

        for name, tenant, tick in fallback:
            # the sequential engine verbatim — errors (strict infeasibility,
            # invalid demands) surface exactly as they would un-batched
            state = tenant.session.observe(
                tick.demand, cost_row=tick.cost_row, counts=tick.counts
            )
            writer.write(state.as_row(), tenant=name)
            self._c_fallback_ticks.inc()
            if cadence and tenant.session.ticks % cadence == 0:
                checkpoint(name, tenant)

    def _run_cohort(
        self, key, members, fallback, writer, emit, cadence, checkpoint
    ) -> None:
        cohort_started = time.perf_counter_ns()
        _, kind, row_key, counts_key = key
        session0 = members[0][1].session
        cache = session0.cache
        stream = cache.stream

        table = self._tables.get(key)
        if table is None:
            counts_t = (
                stream.m if counts_key is None else np.asarray(counts_key, dtype=int)
            )
            table = _CohortTable(cache, row_key, counts_t, self.table_budget)
            self._tables[key] = table
        counts_t = table.counts_t
        capacity = table.capacity

        demands = np.array([tick.demand for _, _, tick in members], dtype=float)
        invalid = ~np.isfinite(demands) | (demands < 0)
        over = demands > capacity + 1e-9
        served = np.where(over, capacity, demands)
        shed = np.where(over, demands - capacity, 0.0)

        # resolve ledger slots + table rows once per distinct level; members
        # that cannot be batched (invalid demand, strict over-capacity,
        # saturated table) re-route to the per-tenant slow path
        level_vt: Dict[float, int] = {}
        level_row: Dict[float, Optional[int]] = {}
        keep: List[int] = []
        for i, (name, tenant, tick) in enumerate(members):
            if invalid[i] or (over[i] and tenant.session.degradation == "strict"):
                fallback.append((name, tenant, tick))
                continue
            level = float(served[i])
            vt = level_vt.get(level)
            if vt is None:
                if row_key is None:
                    vt = cache.virtual_slot_base(level)
                else:
                    vt = cache.virtual_slot(level, row_key)
                level_vt[level] = vt
                if kind != "all-on":
                    level_row[level] = table.level_row(level, vt)
            if kind != "all-on" and level_row[level] is None:
                fallback.append((name, tenant, tick))
                self._c_table_fallbacks.inc()
                continue
            keep.append(i)
        if not keep:
            return

        k = len(keep)
        batch = [members[i] for i in keep]
        sessions = [tenant.session for _, tenant, _ in batch]

        if kind == "all-on":
            # sequential AllOn returns asarray(slot.counts).astype(int) — one
            # fresh row per tenant; a tiled matrix gives identical content
            rounded_matrix = np.tile(counts_t.astype(int), (k, 1))
        else:
            rows = np.fromiter(
                (level_row[float(served[i])] for i in keep), dtype=np.intp, count=k
            )
            costs = table.cost_matrix()[rows]  # (k, n) gather
            if kind == "reactive":
                prev = np.stack([s.algorithm._current for s in sessions])
                # same expression as Reactive.step, one tenant per leading axis:
                # int subtraction, clamp, * beta, reduce over the config axis
                switch = np.sum(
                    np.maximum(table.configs[None, :, :] - prev[:, None, :], 0)
                    * stream.beta[None, None, :],
                    axis=2,
                )
                choice = np.argmin(costs + switch, axis=1)
            else:  # follow-demand: switching-blind argmin, memoised per level
                best = table.best_idx
                for i in keep:
                    r = level_row[float(served[i])]
                    if r not in best:
                        best[r] = int(np.argmin(table.cost_rows[r]))
                choice = np.fromiter((best[int(r)] for r in rows), dtype=np.intp, count=k)
            rounded_matrix = table.configs[choice].astype(int)
            if kind == "reactive":
                for i, session in enumerate(sessions):
                    # what ``self._current = configs[best].astype(int)`` leaves
                    # behind sequentially; rows are never mutated in place
                    session.algorithm._current = rounded_matrix[i]

        # amortised per-tenant decision latency; commit cost is metered by the
        # sequential path per tick, here it rides inside the same share
        latency_share = (time.perf_counter_ns() - cohort_started) // k
        r_lists = rounded_matrix.tolist()
        self._c_batched_ticks.add(k)
        self._c_cohort_rounds.inc()
        for i, (name, tenant, tick) in enumerate(batch):
            j = keep[i]
            level = float(served[j])
            # under ledger_budget resolving one level can evict another, so a
            # slot pinned in the pre-resolve loop may be recycled by now;
            # re-resolving at the point of use restores the sequential
            # resolve→commit interleaving (an O(1) dict hit when unbudgeted)
            if row_key is None:
                vt = cache.virtual_slot_base(level)
            else:
                vt = cache.virtual_slot(level, row_key)
            state = tenant.session.observe_batch(
                float(demands[j]),
                level,
                float(shed[j]),
                vt,
                rounded_matrix[i],
                r_lists[i],
                latency_ns=int(latency_share),
                emit=emit,
            )
            if emit:
                writer.write(state.as_row(), tenant=name)
            if cadence and tenant.session.ticks % cadence == 0:
                checkpoint(name, tenant)

    # ------------------------------------------------------------------ report
    def batch_counters(self) -> dict:
        """Cohort/batch hit-rate stats (how much of the load was vectorised)."""
        total = self.batched_ticks + self.fallback_ticks
        counters = {
            "batched_ticks": self.batched_ticks,
            "fallback_ticks": self.fallback_ticks,
            "table_fallbacks": self.table_fallbacks,
            "batch_hit_rate": round(self.batched_ticks / total, 6) if total else 0.0,
            "rounds": self.rounds,
            "cohort_rounds": self.cohort_rounds,
            "avg_cohort_size": (
                round(self.batched_ticks / self.cohort_rounds, 3)
                if self.cohort_rounds
                else 0.0
            ),
            "decision_tables": len(self._tables),
            "table_levels": sum(len(t.cost_rows) for t in self._tables.values()),
            "table_installs": sum(t.installs for t in self._tables.values()),
        }
        if self._pump_counters is not None:
            counters["feed_pump"] = self._pump_counters
        return counters

    def report(self, wall_seconds: Optional[float] = None) -> dict:
        report = super().report(wall_seconds=wall_seconds)
        report["batch"] = self.batch_counters()
        return report


# --------------------------------------------------------------------------- #
# Batched-vs-sequential equivalence verification
# --------------------------------------------------------------------------- #


def verify_batched(
    build_tenants,
    tolerance: float = 1e-9,
    checkpoint_at: Optional[int] = None,
    overlap: bool = False,
    max_ticks: Optional[int] = None,
    engine_kwargs: Optional[dict] = None,
) -> dict:
    """Gate: a batched run must be bit-identical to the sequential engine.

    ``build_tenants(engine)`` registers the same tenants on whichever engine
    it is handed (call it twice with fresh feeds — it must not share iterator
    state).  Runs a sequential :class:`ServeEngine` and a
    :class:`BatchedServeEngine` over the same workload and asserts, per
    tenant: ``np.array_equal`` schedules, cumulative cost within
    ``tolerance``, and exactly equal SLA counters (violations, shed totals,
    forced-downs, tick counts).

    ``checkpoint_at`` additionally exercises the mid-stream restart: both
    engines run ``checkpoint_at`` rounds, every tenant is checkpoint/restored
    in place through JSON (:meth:`ServeEngine.roundtrip_tenant`), and the
    streams then resume to completion — restart must not perturb either
    engine.  Raises :class:`AssertionError` on any mismatch; returns a
    JSON-safe report row.
    """
    engine_kwargs = dict(engine_kwargs or {})
    share_caches = engine_kwargs.pop("share_caches", True)
    sequential = ServeEngine(
        share_caches=share_caches,
        warm_start=engine_kwargs.get("warm_start", False),
        ledger_budget=engine_kwargs.get("ledger_budget"),
        tensor_budget_bytes=engine_kwargs.get("tensor_budget_bytes"),
    )
    build_tenants(sequential)
    batched = BatchedServeEngine(
        share_caches=share_caches, overlap=overlap, **engine_kwargs
    )
    build_tenants(batched)
    if sorted(batched._tenants) != sorted(sequential._tenants):
        raise AssertionError("build_tenants registered different tenant sets")

    def drive(engine):
        if checkpoint_at is not None:
            engine.run(max_ticks=checkpoint_at, finalize=False)
            for name in list(engine._tenants):
                engine.roundtrip_tenant(name)
            remaining = None if max_ticks is None else max_ticks - checkpoint_at
            return engine.run(max_ticks=remaining)
        return engine.run(max_ticks=max_ticks)

    drive(sequential)
    report = drive(batched)

    tenants = []
    for name in sequential._tenants:
        seq = sequential.session(name)
        bat = batched.session(name)
        if seq.ticks != bat.ticks:
            raise AssertionError(
                f"{name}: tick counts diverge (sequential {seq.ticks}, batched {bat.ticks})"
            )
        seq_schedule = seq.schedule.x
        bat_schedule = bat.schedule.x
        if not np.array_equal(seq_schedule, bat_schedule):
            first = int(np.argmax(np.any(seq_schedule != bat_schedule, axis=1)))
            raise AssertionError(
                f"{name}: batched schedule diverges from sequential at tick {first}: "
                f"{bat_schedule[first]} vs {seq_schedule[first]}"
            )
        deviation = abs(seq.cumulative_cost - bat.cumulative_cost)
        if deviation > tolerance:
            raise AssertionError(
                f"{name}: batched cost deviates by {deviation:g} (> {tolerance:g})"
            )
        for attr in ("sla_violations", "forced_downs"):
            if getattr(seq, attr) != getattr(bat, attr):
                raise AssertionError(
                    f"{name}: {attr} diverge (sequential {getattr(seq, attr)}, "
                    f"batched {getattr(bat, attr)})"
                )
        if abs(seq.shed_demand_total - bat.shed_demand_total) > tolerance:
            raise AssertionError(f"{name}: shed totals diverge")
        tenants.append(
            {
                "tenant": name,
                "ticks": int(seq.ticks),
                "cost_deviation": deviation,
                "algorithm": seq.algorithm.name,
                "batched": _decider_kind(bat) is not None,
                "p99_ms": bat.latency_summary().get("p99_ms"),
            }
        )

    batch = report["batch"]
    return {
        "tenants": tenants,
        "ticks_total": int(sum(row["ticks"] for row in tenants)),
        "max_cost_deviation": max((row["cost_deviation"] for row in tenants), default=0.0),
        "schedules_identical": True,
        "checkpoint_at": checkpoint_at,
        "overlap": bool(overlap),
        "latency": report["latency"],
        "wall_seconds": report.get("wall_seconds"),
        "batch": batch,
    }
