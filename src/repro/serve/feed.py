"""Trace feeds: demand sources for streaming replay.

A feed is an iterable of :class:`Tick` objects — demand plus the optional
per-tick fleet information (time-dependent cost rows, maintenance counts) a
:class:`~repro.serve.session.ControllerSession` reveals to its algorithm one
slot at a time.  Sources:

* :class:`InstanceFeed` — replay a materialised
  :class:`~repro.core.instance.ProblemInstance` (the batch-equivalence
  anchor: streaming an instance must reproduce ``run_online`` on it),
* :class:`ScenarioFeed` — replay a registered scenario family by name
  (``ScenarioSpec`` address → lazy materialisation → replay),
* :class:`JsonlFeed` — replay a JSONL demand stream (one number or one
  ``{"demand": x}`` object per line),
* :class:`SyntheticFeed` — generate a named trace preset (``"diurnal"``, ...)
  or any array/callable on the fly.

Every feed supports *time-warped* playback: ``feed.play(speed=60)`` paces the
ticks at ``tick_seconds / speed`` wall seconds each (one simulated minute per
wall second at ``tick_seconds=3600, speed=60``); ``speed=None`` (the default
everywhere correctness matters) replays as fast as the controller can
consume.
"""

from __future__ import annotations

import json
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Union

import numpy as np

from ..core.instance import ProblemInstance
from ..workloads.traces import named_trace

__all__ = [
    "Tick",
    "TraceFeed",
    "ArrayFeed",
    "FeedError",
    "InstanceFeed",
    "JsonlFeed",
    "ScenarioFeed",
    "SyntheticFeed",
    "build_feed",
    "payload_checksum",
    "write_jsonl_trace",
]


class FeedError(RuntimeError):
    """A trace feed could not produce a valid tick (malformed line, bad checksum).

    The message always carries the source location (``path:line``) so a
    corrupt multi-gigabyte trace points at the offending line, not at a bare
    ``json.JSONDecodeError`` somewhere inside the replay loop.
    """


def payload_checksum(payload: dict) -> str:
    """Order-independent CRC-32 of a JSON-safe payload (format ``crc32:xxxxxxxx``).

    Computed over the canonical (sorted-keys) JSON encoding, so semantically
    equal payloads agree regardless of key order.  Used by JSONL trace lines
    and session checkpoints alike — cheap enough to run per line, strong
    enough to catch the truncation/bit-rot class of corruption (this is an
    integrity check, not an authenticity one).
    """
    canonical = json.dumps(payload, sort_keys=True).encode("utf-8")
    return f"crc32:{zlib.crc32(canonical) & 0xFFFFFFFF:08x}"


def write_jsonl_trace(path, demands, checksum: bool = False) -> int:
    """Write a demand array as a :class:`JsonlFeed`-readable JSONL file.

    With ``checksum=True`` every line is ``{"demand": x, "checksum": ...}``
    so the feed (or any other consumer) can verify line integrity; returns
    the number of lines written.
    """
    demands = np.asarray(demands, dtype=float).reshape(-1)
    with open(path, "w", encoding="utf-8") as handle:
        for demand in demands:
            payload = {"demand": float(demand)}
            if checksum:
                payload["checksum"] = payload_checksum({"demand": payload["demand"]})
            handle.write(json.dumps(payload) + "\n")
    return int(demands.size)


@dataclass(frozen=True, eq=False)
class Tick:
    """One step of a demand stream (plus optional per-tick fleet information)."""

    t: int
    demand: float
    cost_row: Optional[tuple] = None
    counts: Optional[np.ndarray] = None


class TraceFeed:
    """Base class: an iterable of :class:`Tick` objects with paced playback."""

    #: Fleet the trace was materialised against (``None`` for demand-only feeds).
    server_types: Optional[tuple] = None
    #: Simulated duration of one tick, in seconds (pacing only).
    tick_seconds: float = 1.0

    def ticks(self) -> Iterator[Tick]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Tick]:
        return self.ticks()

    def play(self, speed: Optional[float] = None) -> Iterator[Tick]:
        """Iterate the feed at a time-warp factor.

        ``speed=None`` (or ``inf``) yields as fast as possible; otherwise each
        tick is released ``tick_seconds / speed`` wall seconds after the
        previous one (sleeping only for whatever time the consumer has not
        already spent).
        """
        if speed is None or speed <= 0 or np.isinf(speed):
            yield from self.ticks()
            return
        interval = self.tick_seconds / float(speed)
        start = time.monotonic()
        for i, tick in enumerate(self.ticks()):
            due = start + i * interval
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            yield tick


class ArrayFeed(TraceFeed):
    """Replay a plain demand array (no per-tick fleet information)."""

    def __init__(self, demands, tick_seconds: float = 1.0, server_types=None):
        self._demands = np.asarray(demands, dtype=float).reshape(-1)
        self.tick_seconds = float(tick_seconds)
        self.server_types = None if server_types is None else tuple(server_types)

    def __len__(self) -> int:
        return len(self._demands)

    def ticks(self) -> Iterator[Tick]:
        for t, demand in enumerate(self._demands):
            yield Tick(t=t, demand=float(demand))


class InstanceFeed(TraceFeed):
    """Replay the demand trace (and per-tick cost rows / counts) of an instance.

    Time-independent instances yield bare demand ticks; time-dependent costs
    and fleet sizes are revealed tick by tick — exactly the information the
    batch driver hands ``step`` for the same slot, which is what makes the
    streamed replay equivalent to ``run_online`` on the instance.
    """

    def __init__(self, instance: ProblemInstance, tick_seconds: float = 1.0):
        self.instance = instance
        self.server_types = instance.server_types
        self.tick_seconds = float(tick_seconds)

    def __len__(self) -> int:
        return self.instance.T

    def ticks(self) -> Iterator[Tick]:
        instance = self.instance
        for t in range(instance.T):
            yield Tick(
                t=t,
                demand=float(instance.demand[t]),
                cost_row=instance.cost_row(t) if instance.has_time_dependent_costs else None,
                counts=instance.counts_at(t) if instance.has_time_dependent_counts else None,
            )


class ScenarioFeed(InstanceFeed):
    """Replay a registered scenario family by declarative address.

    ``ScenarioFeed("diurnal-cpu-gpu", T=48, seed=3)`` materialises the spec
    through the registry and replays the resulting instance; the resolved
    :class:`~repro.scenarios.spec.ScenarioSpec` is kept on ``spec`` so
    telemetry can stamp the address of what was replayed.
    """

    def __init__(self, scenario, tick_seconds: float = 1.0, seed: Optional[int] = None, **params):
        from ..scenarios import ScenarioSpec, build, validate

        spec = ScenarioSpec.parse(scenario)
        if params or seed is not None:
            spec = spec.with_overrides(seed=seed, **params)
        self.spec = validate(spec)
        super().__init__(build(self.spec), tick_seconds=tick_seconds)


class JsonlFeed(TraceFeed):
    """Replay a JSONL demand stream: one number or ``{"demand": x}`` per line.

    Input hardening (a live trace file is the least trustworthy input in the
    serve stack):

    * malformed lines raise :class:`FeedError` naming ``path:line`` — or are
      counted and skipped under ``on_error="skip"`` (degrade-per-policy),
    * ``verify_checksum=True`` requires every line to carry the ``checksum``
      field written by :func:`write_jsonl_trace` and rejects mismatches;
      by default checksums are verified only when present,
    * transient open failures are retried ``retries`` times with exponential
      backoff starting at ``retry_delay`` seconds.
    """

    def __init__(
        self,
        path,
        tick_seconds: float = 1.0,
        on_error: str = "raise",
        retries: int = 0,
        retry_delay: float = 0.05,
        verify_checksum: bool = False,
    ):
        if on_error not in ("raise", "skip"):
            raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
        self.path = path
        self.tick_seconds = float(tick_seconds)
        self.on_error = on_error
        self.retries = int(retries)
        self.retry_delay = float(retry_delay)
        self.verify_checksum = bool(verify_checksum)
        #: Malformed lines dropped by the last ``ticks()`` pass (``on_error="skip"``).
        self.skipped = 0

    def _open(self):
        delay = self.retry_delay
        for attempt in range(self.retries + 1):
            try:
                return open(self.path, "r", encoding="utf-8")
            except OSError:
                if attempt == self.retries:
                    raise
                time.sleep(delay)
                delay *= 2

    def _parse_line(self, line: str, line_no: int) -> float:
        where = f"{self.path}:{line_no}"
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise FeedError(f"{where}: malformed JSONL line ({exc.msg})") from exc
        if isinstance(payload, dict):
            if "demand" not in payload:
                raise FeedError(f"{where}: object line has no 'demand' key (got {sorted(payload)})")
            claimed = payload.get("checksum")
            if claimed is not None or self.verify_checksum:
                body = {k: v for k, v in payload.items() if k != "checksum"}
                if claimed is None:
                    raise FeedError(f"{where}: checksum required but line carries none")
                actual = payload_checksum(body)
                if claimed != actual:
                    raise FeedError(
                        f"{where}: checksum mismatch (line says {claimed}, content is {actual})"
                    )
            raw = payload["demand"]
        else:
            if self.verify_checksum:
                raise FeedError(f"{where}: checksum required but line is a bare number")
            raw = payload
        try:
            demand = float(raw)
        except (TypeError, ValueError) as exc:
            raise FeedError(f"{where}: demand {raw!r} is not a number") from exc
        if not np.isfinite(demand) or demand < 0:
            raise FeedError(f"{where}: demand must be finite and non-negative, got {demand!r}")
        return demand

    def ticks(self) -> Iterator[Tick]:
        t = 0
        self.skipped = 0
        with self._open() as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    demand = self._parse_line(line, line_no)
                except FeedError:
                    if self.on_error == "skip":
                        self.skipped += 1
                        continue
                    raise
                yield Tick(t=t, demand=demand)
                t += 1


def build_feed(spec) -> TraceFeed:
    """Materialise a *declarative* feed description into a :class:`TraceFeed`.

    Feeds themselves hold live objects (file handles, instances, cost
    functions); the serve fabric ships tenants across process boundaries and
    rebuilds feeds after a crash, so it addresses them by plain JSON-safe
    dicts instead — the feed analogue of the scenario registry's
    :class:`~repro.scenarios.spec.ScenarioSpec`.  A ready
    :class:`TraceFeed` passes through unchanged.  Spec shapes (``kind`` keys):

    * ``{"kind": "scenario", "scenario": name, "params": {...}, "seed": s}``
      — registry address, the common fabric case (carries a fleet),
    * ``{"kind": "jsonl", "path": ..., "on_error": ..., "retries": ...,
      "verify_checksum": ...}`` — a JSONL demand stream,
    * ``{"kind": "synthetic", "source": name, "slots": n, "seed": s}``
      — a named trace preset,
    * ``{"kind": "array", "demands": [...]}`` — an inline demand array.

    Every kind accepts ``tick_seconds``.  Rebuilding the same spec twice
    yields the same tick stream — the determinism crash recovery replays
    missed ticks from.
    """
    if isinstance(spec, TraceFeed):
        return spec
    if not isinstance(spec, dict):
        raise TypeError(f"feed spec must be a TraceFeed or a dict, got {type(spec).__name__}")
    spec = dict(spec)
    kind = spec.pop("kind", "scenario" if "scenario" in spec else None)
    tick_seconds = float(spec.pop("tick_seconds", 1.0))
    if kind == "scenario":
        params = dict(spec.pop("params", {}))
        return ScenarioFeed(
            spec.pop("scenario"),
            tick_seconds=tick_seconds,
            seed=spec.pop("seed", None),
            **params,
            **spec,
        )
    if kind == "jsonl":
        return JsonlFeed(spec.pop("path"), tick_seconds=tick_seconds, **spec)
    if kind == "synthetic":
        return SyntheticFeed(
            spec.pop("source"),
            slots=int(spec.pop("slots", 48)),
            seed=spec.pop("seed", None),
            tick_seconds=tick_seconds,
        )
    if kind == "array":
        return ArrayFeed(spec.pop("demands"), tick_seconds=tick_seconds)
    raise ValueError(
        f"unknown feed kind {kind!r} (known: scenario, jsonl, synthetic, array)"
    )


class SyntheticFeed(ArrayFeed):
    """Generate a synthetic demand stream from a named preset or a callable.

    ``SyntheticFeed("diurnal", slots=48, seed=0)`` resolves the same preset
    parameterisation as the CLI's ``--trace diurnal``; a callable source is
    invoked as ``source(slots, seed)`` and must return a 1-D array.
    """

    def __init__(
        self,
        source: Union[str, Callable[[int, Optional[int]], Iterable[float]]],
        slots: int = 48,
        seed: Optional[int] = None,
        tick_seconds: float = 1.0,
    ):
        if callable(source):
            demands = np.asarray(source(int(slots), seed), dtype=float)
        else:
            demands = named_trace(source, int(slots), rng=seed)
        super().__init__(demands, tick_seconds=tick_seconds)
        self.source = source
