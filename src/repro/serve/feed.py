"""Trace feeds: demand sources for streaming replay.

A feed is an iterable of :class:`Tick` objects — demand plus the optional
per-tick fleet information (time-dependent cost rows, maintenance counts) a
:class:`~repro.serve.session.ControllerSession` reveals to its algorithm one
slot at a time.  Sources:

* :class:`InstanceFeed` — replay a materialised
  :class:`~repro.core.instance.ProblemInstance` (the batch-equivalence
  anchor: streaming an instance must reproduce ``run_online`` on it),
* :class:`ScenarioFeed` — replay a registered scenario family by name
  (``ScenarioSpec`` address → lazy materialisation → replay),
* :class:`JsonlFeed` — replay a JSONL demand stream (one number or one
  ``{"demand": x}`` object per line),
* :class:`SyntheticFeed` — generate a named trace preset (``"diurnal"``, ...)
  or any array/callable on the fly.

Every feed supports *time-warped* playback: ``feed.play(speed=60)`` paces the
ticks at ``tick_seconds / speed`` wall seconds each (one simulated minute per
wall second at ``tick_seconds=3600, speed=60``); ``speed=None`` (the default
everywhere correctness matters) replays as fast as the controller can
consume.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Union

import numpy as np

from ..core.instance import ProblemInstance
from ..workloads.traces import named_trace

__all__ = [
    "Tick",
    "TraceFeed",
    "ArrayFeed",
    "InstanceFeed",
    "JsonlFeed",
    "ScenarioFeed",
    "SyntheticFeed",
]


@dataclass(frozen=True, eq=False)
class Tick:
    """One step of a demand stream (plus optional per-tick fleet information)."""

    t: int
    demand: float
    cost_row: Optional[tuple] = None
    counts: Optional[np.ndarray] = None


class TraceFeed:
    """Base class: an iterable of :class:`Tick` objects with paced playback."""

    #: Fleet the trace was materialised against (``None`` for demand-only feeds).
    server_types: Optional[tuple] = None
    #: Simulated duration of one tick, in seconds (pacing only).
    tick_seconds: float = 1.0

    def ticks(self) -> Iterator[Tick]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Tick]:
        return self.ticks()

    def play(self, speed: Optional[float] = None) -> Iterator[Tick]:
        """Iterate the feed at a time-warp factor.

        ``speed=None`` (or ``inf``) yields as fast as possible; otherwise each
        tick is released ``tick_seconds / speed`` wall seconds after the
        previous one (sleeping only for whatever time the consumer has not
        already spent).
        """
        if speed is None or speed <= 0 or np.isinf(speed):
            yield from self.ticks()
            return
        interval = self.tick_seconds / float(speed)
        start = time.monotonic()
        for i, tick in enumerate(self.ticks()):
            due = start + i * interval
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            yield tick


class ArrayFeed(TraceFeed):
    """Replay a plain demand array (no per-tick fleet information)."""

    def __init__(self, demands, tick_seconds: float = 1.0, server_types=None):
        self._demands = np.asarray(demands, dtype=float).reshape(-1)
        self.tick_seconds = float(tick_seconds)
        self.server_types = None if server_types is None else tuple(server_types)

    def __len__(self) -> int:
        return len(self._demands)

    def ticks(self) -> Iterator[Tick]:
        for t, demand in enumerate(self._demands):
            yield Tick(t=t, demand=float(demand))


class InstanceFeed(TraceFeed):
    """Replay the demand trace (and per-tick cost rows / counts) of an instance.

    Time-independent instances yield bare demand ticks; time-dependent costs
    and fleet sizes are revealed tick by tick — exactly the information the
    batch driver hands ``step`` for the same slot, which is what makes the
    streamed replay equivalent to ``run_online`` on the instance.
    """

    def __init__(self, instance: ProblemInstance, tick_seconds: float = 1.0):
        self.instance = instance
        self.server_types = instance.server_types
        self.tick_seconds = float(tick_seconds)

    def __len__(self) -> int:
        return self.instance.T

    def ticks(self) -> Iterator[Tick]:
        instance = self.instance
        for t in range(instance.T):
            yield Tick(
                t=t,
                demand=float(instance.demand[t]),
                cost_row=instance.cost_row(t) if instance.has_time_dependent_costs else None,
                counts=instance.counts_at(t) if instance.has_time_dependent_counts else None,
            )


class ScenarioFeed(InstanceFeed):
    """Replay a registered scenario family by declarative address.

    ``ScenarioFeed("diurnal-cpu-gpu", T=48, seed=3)`` materialises the spec
    through the registry and replays the resulting instance; the resolved
    :class:`~repro.scenarios.spec.ScenarioSpec` is kept on ``spec`` so
    telemetry can stamp the address of what was replayed.
    """

    def __init__(self, scenario, tick_seconds: float = 1.0, seed: Optional[int] = None, **params):
        from ..scenarios import ScenarioSpec, build, validate

        spec = ScenarioSpec.parse(scenario)
        if params or seed is not None:
            spec = spec.with_overrides(seed=seed, **params)
        self.spec = validate(spec)
        super().__init__(build(self.spec), tick_seconds=tick_seconds)


class JsonlFeed(TraceFeed):
    """Replay a JSONL demand stream: one number or ``{"demand": x}`` per line."""

    def __init__(self, path, tick_seconds: float = 1.0):
        self.path = path
        self.tick_seconds = float(tick_seconds)

    def ticks(self) -> Iterator[Tick]:
        t = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line)
                if isinstance(payload, dict):
                    demand = float(payload["demand"])
                else:
                    demand = float(payload)
                yield Tick(t=t, demand=demand)
                t += 1


class SyntheticFeed(ArrayFeed):
    """Generate a synthetic demand stream from a named preset or a callable.

    ``SyntheticFeed("diurnal", slots=48, seed=0)`` resolves the same preset
    parameterisation as the CLI's ``--trace diurnal``; a callable source is
    invoked as ``source(slots, seed)`` and must return a 1-D array.
    """

    def __init__(
        self,
        source: Union[str, Callable[[int, Optional[int]], Iterable[float]]],
        slots: int = 48,
        seed: Optional[int] = None,
        tick_seconds: float = 1.0,
    ):
        if callable(source):
            demands = np.asarray(source(int(slots), seed), dtype=float)
        else:
            demands = named_trace(source, int(slots), rng=seed)
        super().__init__(demands, tick_seconds=tick_seconds)
        self.source = source
