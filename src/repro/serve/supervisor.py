"""Worker supervision: heartbeats, tick deadlines, restart policy, breakers.

This module is the parent-process half of the serve fabric
(:mod:`repro.serve.fabric`).  A :class:`Supervisor` owns a set of
:class:`WorkerHandle` objects — one per worker process — and runs the
monitor loop a production serving fleet needs:

* **liveness** via the worker's heartbeat file (written atomically every
  round) and the process object itself: a worker that exits without its
  result file, or whose heartbeat goes stale past ``heartbeat_timeout``
  (a hung feed, a livelocked tick), is declared crashed — stale workers are
  SIGKILLed first, so a zombie can never hold its tenants hostage;
* **restart policy** (:class:`RestartPolicy`): crashed workers restart with
  exponential backoff, up to ``max_restarts`` inside a sliding window —
  beyond that the worker is marked failed and the rest of the fabric keeps
  serving (the crash-loop guard);
* **recovery latency**: the wall time from crash detection to the restarted
  incarnation's first heartbeat (i.e. sessions restored from checkpoint and
  missed ticks replayed) is measured and reported per restart.

The communication fabric is deliberately the filesystem: heartbeat, control
and result files written with ``tmp + os.replace``.  Pipes and queues die
with a SIGKILLed process; atomically-replaced files are exactly as fresh and
cannot be torn, which is what makes the supervisor's view crash-consistent.

:class:`CircuitBreaker` is the per-*tenant* analogue used inside workers:
a feed that keeps raising :class:`~repro.serve.feed.FeedError` trips open
after ``failure_threshold`` consecutive failures, cools down, and is probed
half-open with exponentially growing cooldowns — quarantining one tenant's
broken feed instead of failing the worker (let alone the fabric).
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "RestartPolicy",
    "Supervisor",
    "WorkerHandle",
    "read_json",
    "write_json_atomic",
]


HEARTBEAT_FILE = "heartbeat.json"
CONTROL_FILE = "control.json"
RESULT_FILE = "result.json"
RELEASED_DIR = "released"


def write_json_atomic(path, payload: dict) -> Path:
    """Write a JSON file via ``tmp + os.replace`` (readers never see a torn file)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def read_json(path, default=None):
    """Read a JSON file, returning ``default`` when missing or unreadable.

    Files written by :func:`write_json_atomic` cannot be torn, so a decode
    error here means a foreign/partial file — treated as absent rather than
    fatal (the supervisor must keep polling through transient weirdness).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return default


# --------------------------------------------------------------------------- #
# Policies
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class RestartPolicy:
    """How crashed workers come back: bounded restarts with exponential backoff.

    A worker may restart at most ``max_restarts`` times within any sliding
    ``window_seconds`` window; the ``k``-th restart of a window waits
    ``backoff_seconds * backoff_factor**k`` (capped at
    ``max_backoff_seconds``) before respawning.  Beyond the budget the worker
    is marked failed permanently — a deterministic crash loop must not spin
    the fabric forever.
    """

    max_restarts: int = 3
    window_seconds: float = 60.0
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 2.0

    def backoff_for(self, restart_index: int) -> float:
        """Delay before the ``restart_index``-th restart of the current window."""
        delay = self.backoff_seconds * (self.backoff_factor ** max(restart_index, 0))
        return min(delay, self.max_backoff_seconds)


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning of the per-tenant feed circuit breaker."""

    #: Consecutive :class:`FeedError` failures before the breaker opens.
    failure_threshold: int = 3
    #: Rounds the first open state lasts before a half-open probe.
    cooldown_rounds: int = 8
    #: Cooldown growth per re-open (a flapping feed backs off exponentially).
    backoff_factor: float = 2.0
    max_cooldown_rounds: int = 256
    #: Opens after which the tenant is abandoned (permanently broken feed).
    max_opens: int = 5

    def to_dict(self) -> dict:
        return {
            "failure_threshold": self.failure_threshold,
            "cooldown_rounds": self.cooldown_rounds,
            "backoff_factor": self.backoff_factor,
            "max_cooldown_rounds": self.max_cooldown_rounds,
            "max_opens": self.max_opens,
        }

    @classmethod
    def from_dict(cls, payload: Optional[dict]) -> "BreakerConfig":
        return cls(**payload) if payload else cls()


class CircuitBreaker:
    """Closed → open → half-open breaker over a tenant's feed.

    ``allow(round)`` gates each attempt: closed admits everything; open
    quarantines the tenant until its cooldown expires; the first admitted
    attempt after a cooldown is the half-open *probe* — success closes the
    breaker (and resets the cooldown), failure re-opens it with an
    exponentially longer cooldown.  Rounds (not wall seconds) are the clock,
    so replays are deterministic.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(self, config: Optional[BreakerConfig] = None):
        self.config = config or BreakerConfig()
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.failures = 0
        self.opens = 0
        self.probes = 0
        self._cooldown = self.config.cooldown_rounds
        self._open_until = 0

    @property
    def exhausted(self) -> bool:
        """The feed kept failing through ``max_opens`` cooldowns: give it up."""
        return self.opens >= self.config.max_opens

    def allow(self, round_index: int) -> bool:
        """Whether this round may attempt the tenant's feed."""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN and round_index >= self._open_until:
            self.state = self.HALF_OPEN
            self.probes += 1
            return True
        return self.state == self.HALF_OPEN

    def record_failure(self, round_index: int) -> None:
        self.failures += 1
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN or (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.config.failure_threshold
        ):
            self.state = self.OPEN
            self.opens += 1
            self._open_until = round_index + self._cooldown
            self._cooldown = min(
                int(self._cooldown * self.config.backoff_factor),
                self.config.max_cooldown_rounds,
            )

    def record_success(self) -> None:
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self._cooldown = self.config.cooldown_rounds

    def counters(self) -> dict:
        return {
            "state": self.state,
            "failures": self.failures,
            "opens": self.opens,
            "probes": self.probes,
        }


# --------------------------------------------------------------------------- #
# Worker handles and the supervisor loop
# --------------------------------------------------------------------------- #


@dataclass
class WorkerHandle:
    """Parent-side view of one worker: process, directory, restart ledger."""

    id: int
    directory: Path
    process: object = None
    #: Process incarnations spawned so far (0 before the first spawn).
    incarnation: int = 0
    status: str = "pending"  # pending | running | restarting | done | failed
    restart_times: List[float] = field(default_factory=list)
    recovery_latencies: List[float] = field(default_factory=list)
    last_heartbeat: Optional[dict] = None
    #: monotonic timestamp when the current crash was detected (None = healthy)
    crash_detected_at: Optional[float] = None
    restart_due_at: Optional[float] = None
    spawned_at: Optional[float] = None
    #: wall-clock spawn time of the current incarnation (heartbeat-age anchor)
    spawned_wall: Optional[float] = None
    exit_reason: Optional[str] = None

    @property
    def heartbeat_path(self) -> Path:
        return self.directory / HEARTBEAT_FILE

    @property
    def control_path(self) -> Path:
        return self.directory / CONTROL_FILE

    @property
    def result_path(self) -> Path:
        return self.directory / RESULT_FILE

    @property
    def restarts(self) -> int:
        return len(self.restart_times)

    def released_marker(self, tenant: str) -> Path:
        return self.directory / RELEASED_DIR / f"{tenant}.json"

    def liveness(self) -> dict:
        """JSON-safe liveness row for the fabric report / telemetry."""
        return {
            "worker": self.id,
            "status": self.status,
            "incarnation": self.incarnation,
            "restarts": self.restarts,
            "recovery_latency_s": [round(v, 6) for v in self.recovery_latencies],
            "last_round": (self.last_heartbeat or {}).get("round"),
            "exit_reason": self.exit_reason,
        }


class Supervisor:
    """Monitors a fleet of worker processes and enforces the restart policy.

    ``spawn(worker_id, incarnation)`` is provided by the fabric and must
    return a *started* process object (anything with ``pid``, ``is_alive()``,
    ``join()``, ``exitcode``).  The supervisor itself is transport-agnostic:
    it reads the heartbeat/result files the worker runtime writes.
    """

    def __init__(
        self,
        workers: List[WorkerHandle],
        spawn: Callable[[int, int], object],
        policy: Optional[RestartPolicy] = None,
        heartbeat_timeout: float = 10.0,
        poll_interval: float = 0.02,
        event: Optional[Callable[[dict], None]] = None,
    ):
        self.workers: Dict[int, WorkerHandle] = {w.id: w for w in workers}
        self._spawn = spawn
        self.policy = policy or RestartPolicy()
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.poll_interval = float(poll_interval)
        self._event_sink = event
        self.events: List[dict] = []

    # ----------------------------------------------------------------- events
    def event(self, kind: str, worker: Optional[int] = None, **extra) -> None:
        row = {"event": kind, "time": time.time()}
        if worker is not None:
            row["worker"] = worker
        row.update(extra)
        self.events.append(row)
        if self._event_sink is not None:
            self._event_sink(row)

    # ---------------------------------------------------------------- spawning
    def start(self) -> None:
        """Spawn every pending worker (first incarnation)."""
        for worker in self.workers.values():
            if worker.status == "pending":
                self._launch(worker)

    def _launch(self, worker: WorkerHandle) -> None:
        worker.process = self._spawn(worker.id, worker.incarnation)
        worker.incarnation += 1
        worker.spawned_at = time.monotonic()
        worker.spawned_wall = time.time()
        worker.status = "running"
        self.event("worker_start", worker.id, incarnation=worker.incarnation - 1,
                   pid=getattr(worker.process, "pid", None))

    def revive(self, worker_id: int) -> None:
        """Respawn a *finished* worker (e.g. a migration targets it).

        Not a crash: the restart budget is not charged.  The stale result
        file is removed so completion is re-detected from the new incarnation.
        """
        worker = self.workers[worker_id]
        if worker.status != "done":
            raise ValueError(f"worker {worker_id} is {worker.status}, not done")
        try:
            os.remove(worker.result_path)
        except OSError:
            pass
        self._launch(worker)
        self.event("worker_revive", worker_id)

    def kill(self, worker_id: int) -> None:
        """SIGKILL a running worker (ops/testing hook; recovery follows)."""
        worker = self.workers[worker_id]
        process = worker.process
        if process is not None and process.is_alive():
            os.kill(process.pid, signal.SIGKILL)

    # ----------------------------------------------------------------- polling
    def heartbeat_age(self, worker: WorkerHandle, now: float) -> Optional[float]:
        """Seconds since the worker last proved liveness.

        Anchored at the heartbeat file's mtime *or* the current incarnation's
        spawn time, whichever is later — a restarted worker gets a full
        timeout to restore its sessions before the previous incarnation's
        stale heartbeat can condemn it.
        """
        try:
            mtime = os.stat(worker.heartbeat_path).st_mtime
        except OSError:
            mtime = None
        anchors = [v for v in (mtime, worker.spawned_wall) if v is not None]
        if not anchors:
            return None
        return max(0.0, time.time() - max(anchors))

    def poll(self) -> None:
        """One supervision pass over every worker."""
        now = time.monotonic()
        for worker in self.workers.values():
            if worker.status == "running":
                self._poll_running(worker, now)
            if worker.status == "restarting" and now >= (worker.restart_due_at or 0):
                self._restart(worker)

    def _poll_running(self, worker: WorkerHandle, now: float) -> None:
        process = worker.process
        heartbeat = read_json(worker.heartbeat_path)
        if heartbeat is not None:
            worker.last_heartbeat = heartbeat
            if (
                worker.crash_detected_at is not None
                and heartbeat.get("incarnation") == worker.incarnation - 1
            ):
                # first heartbeat of the restarted incarnation: sessions are
                # restored and missed ticks replayed — recovery is complete
                latency = now - worker.crash_detected_at
                worker.recovery_latencies.append(latency)
                worker.crash_detected_at = None
                self.event("worker_recovered", worker.id,
                           recovery_latency_s=round(latency, 6))
        if not process.is_alive():
            process.join()
            if process.exitcode == 0 and worker.result_path.exists():
                worker.status = "done"
                worker.exit_reason = "completed"
                self.event("worker_done", worker.id)
            else:
                self._crashed(worker, now, reason=f"exitcode {process.exitcode}")
            return
        age = self.heartbeat_age(worker, now)
        if age is not None and age > self.heartbeat_timeout:
            # alive but silent past the tick deadline: a hung feed or a
            # livelocked tick holds every tenant on this worker hostage —
            # kill it and let checkpoint recovery take over
            os.kill(process.pid, signal.SIGKILL)
            process.join()
            self._crashed(worker, now, reason=f"heartbeat deadline ({age:.3f}s)")

    def _crashed(self, worker: WorkerHandle, now: float, reason: str) -> None:
        worker.crash_detected_at = now
        recent = [t for t in worker.restart_times if now - t <= self.policy.window_seconds]
        self.event("worker_crash", worker.id, reason=reason,
                   restarts_in_window=len(recent))
        if len(recent) >= self.policy.max_restarts:
            worker.status = "failed"
            worker.exit_reason = f"restart budget exhausted after {reason}"
            self.event("worker_failed", worker.id, reason=worker.exit_reason)
            return
        delay = self.policy.backoff_for(len(recent))
        worker.restart_due_at = now + delay
        worker.status = "restarting"

    def _restart(self, worker: WorkerHandle) -> None:
        worker.restart_times.append(time.monotonic())
        worker.restart_due_at = None
        self._launch(worker)
        self.event("worker_restart", worker.id, incarnation=worker.incarnation - 1)

    # --------------------------------------------------------------- main loop
    @property
    def active(self) -> bool:
        return any(w.status in ("pending", "running", "restarting") for w in self.workers.values())

    def run(
        self,
        on_poll: Optional[Callable[["Supervisor"], None]] = None,
        timeout: Optional[float] = None,
    ) -> None:
        """Supervise until every worker is done or failed.

        ``on_poll`` runs once per pass (the fabric's migration/kill hooks).
        On ``timeout`` every live worker is SIGKILLed and ``TimeoutError``
        raised — a supervision loop must never hang a CI gate.
        """
        self.start()
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        try:
            while self.active:
                self.poll()
                if on_poll is not None:
                    on_poll(self)
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(
                        f"supervisor exceeded its {timeout:g}s budget with workers "
                        f"{[w.id for w in self.workers.values() if w.status not in ('done', 'failed')]} unfinished"
                    )
                time.sleep(self.poll_interval)
        finally:
            # on a normal exit nothing is alive; on timeout/interrupt never
            # leak live children
            for worker in self.workers.values():
                process = worker.process
                if process is not None and process.is_alive():
                    os.kill(process.pid, signal.SIGKILL)
                    process.join()

    def liveness(self) -> dict:
        """Fabric-level liveness snapshot keyed by worker id."""
        return {str(w.id): w.liveness() for w in self.workers.values()}
