"""Mid-stream fault injection and the chaos determinism gate.

The scenarios layer *bakes* event plans into instances
(:func:`repro.scenarios.events.apply_event_plan` clips demand so batch gates
stay feasible).  This module is the other half of the chaos story: the same
:class:`~repro.scenarios.events.EventPlan` objects applied *unclipped*, tick
by tick, to a live stream — capacity drops that take machines away under the
algorithm's feet, price shocks that rescale this tick's cost row, flash
crowds that push demand past capacity.  Nothing downstream is warned:
sessions run in ``degradation="shed"`` mode and absorb the infeasibility as
SLA accounting instead of raising.

* :class:`FaultInjector` — the seam: ``inject(tick) -> tick`` perturbs one
  :class:`~repro.serve.feed.Tick` according to the plan.  Scaled cost rows
  are memoised per ``(base row, factor)`` so repeated shock ticks carry the
  *same* row objects — the serve cache's virtual-slot ledger and the solver's
  signature-level caches keep deduplicating under chaos.
* :class:`ChaosFeed` — wraps any feed with an injector; sharing one plan
  across tenants of an engine yields correlated cross-tenant bursts (every
  tenant's flash crowd lands on the same ticks).
* :func:`verify_chaos_replay` — the gate behind ``make chaos-smoke``: same
  seed + same event plan ⇒ bit-identical schedules and SLA counters, with and
  without a mid-stream checkpoint/restore round-trip, and the per-tick SLA
  accounting must match an independent recomputation from the injected feed.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..core.cost_functions import ScaledCost
from ..core.instance import ProblemInstance
from ..scenarios.events import EventPlan
from .feed import InstanceFeed, Tick, TraceFeed
from .metrics import MetricsRegistry
from .session import ControllerSession

__all__ = ["ChaosFeed", "FaultInjector", "verify_chaos_replay"]


class FaultInjector:
    """Applies an :class:`EventPlan` to live ticks (the fault-injection seam).

    Per tick ``t`` the injector perturbs, in order:

    * **demand** — multiplied by the product of active flash-crowd factors
      (*not* clipped to capacity: overload is the point; shed-mode sessions
      account for it),
    * **counts** — active capacity drops remove machines from the tick's
      available counts (base fleet counts when the tick carries none),
    * **cost row** — active price shocks wrap every cost function of the
      tick's row in a :class:`~repro.core.cost_functions.ScaledCost`.

    Injection is pure bookkeeping on the plan — deterministic, stateless
    across ticks — so replaying the same (feed, plan) pair twice produces
    identical perturbed streams.
    """

    def __init__(self, plan, server_types=None, *, metrics=None, tenant=None):
        self.plan = EventPlan.parse(plan)
        if self.plan is None:
            self.plan = EventPlan()
        self.server_types = None if server_types is None else tuple(server_types)
        # injection counters live in a metrics registry (the engine's when
        # wired through add_tenant, a private one otherwise); labelled per
        # tenant so correlated cross-tenant bursts stay attributable
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        label = {} if tenant is None else {"tenant": str(tenant)}
        self._c_injected = self.metrics.counter("chaos_injected_ticks", **label)
        self._c_demand = self.metrics.counter("chaos_demand_faults", **label)
        self._c_capacity = self.metrics.counter("chaos_capacity_faults", **label)
        self._c_price = self.metrics.counter("chaos_price_faults", **label)
        self._base_counts = (
            None
            if self.server_types is None
            else np.array([st.count for st in self.server_types], dtype=int)
        )
        self._base_row = (
            None
            if self.server_types is None
            else tuple(st.cost_function for st in self.server_types)
        )
        # one ScaledCost per (base function, factor): identical shock ticks
        # must carry identical row objects or every cache downstream of
        # fleet_signature / the virtual-slot ledger would miss
        self._scaled: dict = {}

    def _scaled_row(self, row: tuple, factor: float) -> tuple:
        key = (tuple(id(fn) for fn in row), round(float(factor), 12))
        scaled = self._scaled.get(key)
        if scaled is None:
            scaled = tuple(ScaledCost(fn, float(factor)) for fn in row)
            self._scaled[key] = scaled
        return scaled

    def counters(self) -> dict:
        """JSON-safe injection totals (read from the registry series)."""
        return {
            "injected_ticks": int(self._c_injected.value),
            "demand_faults": int(self._c_demand.value),
            "capacity_faults": int(self._c_capacity.value),
            "price_faults": int(self._c_price.value),
        }

    def inject(self, tick: Tick) -> Tick:
        """Return the perturbed version of one tick (the tick itself if quiet)."""
        t = int(tick.t)
        demand = float(tick.demand) * self.plan.demand_factor_at(t)

        counts = tick.counts
        if self.plan.events_at(t, "capacity_drop"):
            base = counts if counts is not None else self._base_counts
            if base is None:
                raise ValueError(
                    "a capacity_drop plan needs the fleet: give FaultInjector/ChaosFeed "
                    "server_types (or use a feed that carries them)"
                )
            counts = self.plan.counts_at(t, base)
            self._c_capacity.inc()

        row = tick.cost_row
        factor = self.plan.price_factor_at(t)
        if factor != 1.0:
            base_row = row if row is not None else self._base_row
            if base_row is None:
                raise ValueError(
                    "a price_shock plan needs the fleet's cost row: give "
                    "FaultInjector/ChaosFeed server_types (or use a feed that carries them)"
                )
            row = self._scaled_row(tuple(base_row), factor)
            self._c_price.inc()

        if demand != tick.demand:
            self._c_demand.inc()
        if demand == tick.demand and counts is tick.counts and row is tick.cost_row:
            return tick
        self._c_injected.inc()
        return Tick(t=t, demand=demand, cost_row=row, counts=counts)


class ChaosFeed(TraceFeed):
    """Any feed, perturbed by a :class:`FaultInjector` on the way through.

    ``server_types`` defaults to the wrapped feed's fleet; demand-only feeds
    need it explicitly when the plan carries capacity drops or price shocks.
    Registering several tenants with feeds wrapped around *one shared plan*
    gives correlated cross-tenant bursts — the chaos analogue of the engine's
    shared-cache grouping.
    """

    def __init__(self, feed: TraceFeed, plan, server_types=None, *, metrics=None, tenant=None):
        self.feed = feed
        self.tick_seconds = feed.tick_seconds
        self.server_types = (
            tuple(server_types) if server_types is not None else feed.server_types
        )
        self.injector = FaultInjector(
            plan, server_types=self.server_types, metrics=metrics, tenant=tenant
        )

    @property
    def plan(self) -> EventPlan:
        return self.injector.plan

    def __len__(self) -> int:
        return len(self.feed)

    def ticks(self) -> Iterator[Tick]:
        for tick in self.feed.ticks():
            yield self.injector.inject(tick)


def _chaos_run(
    instance: ProblemInstance,
    plan,
    algorithm,
    checkpoint_at: Optional[int],
) -> ControllerSession:
    feed = ChaosFeed(InstanceFeed(instance), plan)
    session = ControllerSession(algorithm, instance.server_types, degradation="shed")
    for tick in feed:
        if checkpoint_at is not None and tick.t == checkpoint_at:
            session = session.checkpoint_roundtrip()
        session.observe(tick.demand, cost_row=tick.cost_row, counts=tick.counts)
    session.finish()
    return session


def verify_chaos_replay(
    instance: ProblemInstance,
    plan,
    algorithm="A",
    checkpoint_at: Optional[int] = None,
    tolerance: float = 1e-9,
) -> dict:
    """Check chaos determinism: same seed + same plan ⇒ bit-identical replay.

    Streams ``instance`` through a shed-mode session twice under the same
    injected event plan — the second pass crossing a JSON checkpoint/restore
    round-trip after ``checkpoint_at`` ticks (defaults to mid-stream) — and
    asserts that

    * neither replay raises (graceful degradation: injected faults shed, they
      don't crash),
    * the two schedules are equal configuration for configuration,
    * the cumulative costs agree within ``tolerance`` and every SLA counter
      (violations, shed demand, forced power-downs) agrees exactly,
    * the session's SLA-violation count matches an independent recomputation
      from the injected feed (every tick whose demand exceeds its capacity
      must have been accounted).

    Returns a JSON-safe report row; raises :class:`AssertionError` on any
    deviation — this function *is* the ``make chaos-smoke`` gate.
    """
    plan = EventPlan.parse(plan)
    if plan is None:
        plan = EventPlan()
    if checkpoint_at is None and instance.T > 1:
        checkpoint_at = max(1, instance.T // 2)

    first = _chaos_run(instance, plan, algorithm, checkpoint_at=None)
    second = _chaos_run(instance, plan, algorithm, checkpoint_at=checkpoint_at)

    a, b = first.schedule.x, second.schedule.x
    if a.shape != b.shape or not np.array_equal(a, b):
        mismatches = int(np.sum(np.any(a != b, axis=1))) if a.shape == b.shape else -1
        raise AssertionError(
            f"{instance.name}: chaos replay is not deterministic across a "
            f"checkpoint round-trip ({mismatches} mismatching slots)"
        )
    cost_deviation = abs(first.cumulative_cost - second.cumulative_cost)
    if not cost_deviation <= tolerance:
        raise AssertionError(
            f"{instance.name}: chaos replay costs deviate by {cost_deviation:.3e} "
            f"across a checkpoint round-trip (tolerance {tolerance:g})"
        )
    counters = {
        "sla_violations": (first.sla_violations, second.sla_violations),
        "shed_demand": (first.shed_demand_total, second.shed_demand_total),
        "forced_downs": (first.forced_downs, second.forced_downs),
    }
    for key, (x, y) in counters.items():
        if x != y:
            raise AssertionError(
                f"{instance.name}: SLA counter {key!r} differs across a checkpoint "
                f"round-trip ({x} vs {y})"
            )

    # independent recomputation: every overloaded injected tick must have shed
    zmax = np.array([st.capacity for st in instance.server_types], dtype=float)
    expected_shed_ticks = 0
    for tick in ChaosFeed(InstanceFeed(instance), plan):
        counts = tick.counts
        if counts is None:
            counts = np.array([st.count for st in instance.server_types], dtype=int)
        if tick.demand > float(np.sum(counts * zmax)) + 1e-9:
            expected_shed_ticks += 1
    if expected_shed_ticks > first.sla_violations:
        raise AssertionError(
            f"{instance.name}: {expected_shed_ticks} injected ticks exceed capacity but "
            f"only {first.sla_violations} SLA violations were accounted"
        )

    return {
        "instance": instance.name,
        "algorithm": first.algorithm.name,
        "ticks": first.ticks,
        "events": len(plan.events),
        "checkpoint_at": checkpoint_at,
        "cost": first.cumulative_cost,
        "cost_deviation": cost_deviation,
        "sla_violations": first.sla_violations,
        "shed_demand": round(first.shed_demand_total, 9),
        "forced_downs": first.forced_downs,
        "expected_shed_ticks": expected_shed_ticks,
        "ok": True,
    }
