"""Live replay & serving: streaming controllers on top of the online layer.

The batch layers materialise a full problem instance and iterate it; this
subsystem drives the same :class:`~repro.online.base.OnlineAlgorithm.step`
contract from a *demand stream* that arrives one tick at a time — the regime
the paper's online algorithms were designed for:

* :class:`ControllerSession` — ``observe(demand_t) -> FleetState`` around any
  registered algorithm, with per-tick wall-latency metering and a
  JSON-serialisable ``checkpoint()/restore()``,
* :mod:`~repro.serve.feed` — trace feeds (scenario specs, JSONL streams,
  synthetic generators) with time-warped playback,
* :class:`ServeEngine` — multi-tenant multiplexing over shared dispatch/grid
  caches (N tenants over one fleet geometry cost far less than N isolated
  sessions),
* :class:`ServeFabric` — tenants sharded across *supervised worker processes*
  with heartbeats, restart budgets, crash recovery from rotated atomic
  checkpoints, checkpoint-based live migration and per-tenant feed circuit
  breakers (:mod:`~repro.serve.fabric` / :mod:`~repro.serve.supervisor`),
* :mod:`~repro.serve.telemetry` — per-tick JSONL telemetry, latency
  percentiles and prefix-optimum regret,
* :mod:`~repro.serve.metrics` / :mod:`~repro.serve.trace` /
  :mod:`~repro.serve.watch` — the observability layer: a dependency-free
  labelled metrics registry behind every counter above, a sampling
  tick-phase tracer emitting Chrome ``trace_event`` JSON, and the
  ``repro serve watch`` live dashboard over telemetry/fabric files.

The correctness anchors are :func:`verify_replay` (streaming a scenario must
reproduce the batch ``run_online`` schedule exactly and its cost to 1e-9,
including across a mid-stream checkpoint/restore round-trip; ``make
serve-smoke``) and :func:`verify_crash_recovery` (SIGKILLing a fabric worker
mid-stream must recover schedules bit-identically; ``make fabric-smoke``).
"""

from .batch import BatchedServeEngine, FeedPump, verify_batched
from .chaos import ChaosFeed, FaultInjector, verify_chaos_replay
from .engine import ServeEngine, verify_replay
from .fabric import FabricError, ServeFabric, TenantSpec, verify_crash_recovery
from .feed import (
    ArrayFeed,
    FeedError,
    InstanceFeed,
    JsonlFeed,
    ScenarioFeed,
    SyntheticFeed,
    Tick,
    TraceFeed,
    build_feed,
    payload_checksum,
    write_jsonl_trace,
)
from .session import (
    CheckpointCorruptError,
    ControllerSession,
    FleetState,
    SERVE_ALGORITHMS,
    ServeCache,
    build_serve_algorithm,
    fleet_signature,
    load_checkpoint,
    previous_checkpoint_path,
    save_checkpoint,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_NS,
    MetricsRegistry,
)
from .supervisor import BreakerConfig, CircuitBreaker, RestartPolicy, Supervisor
from .telemetry import TelemetryWriter, latency_percentiles, summarise_sessions
from .trace import TickTracer, TraceSpan
from .watch import FabricWatcher, TelemetryTail, WatchModel, watch_command

__all__ = [
    "ArrayFeed",
    "BatchedServeEngine",
    "BreakerConfig",
    "ChaosFeed",
    "CheckpointCorruptError",
    "CircuitBreaker",
    "ControllerSession",
    "Counter",
    "FabricError",
    "FabricWatcher",
    "FaultInjector",
    "FeedError",
    "FeedPump",
    "FleetState",
    "Gauge",
    "Histogram",
    "InstanceFeed",
    "JsonlFeed",
    "LATENCY_BUCKETS_NS",
    "MetricsRegistry",
    "RestartPolicy",
    "SERVE_ALGORITHMS",
    "ScenarioFeed",
    "ServeCache",
    "ServeEngine",
    "ServeFabric",
    "Supervisor",
    "SyntheticFeed",
    "TelemetryTail",
    "TelemetryWriter",
    "TenantSpec",
    "Tick",
    "TickTracer",
    "TraceFeed",
    "TraceSpan",
    "WatchModel",
    "build_feed",
    "build_serve_algorithm",
    "fleet_signature",
    "latency_percentiles",
    "load_checkpoint",
    "payload_checksum",
    "previous_checkpoint_path",
    "save_checkpoint",
    "summarise_sessions",
    "verify_batched",
    "verify_chaos_replay",
    "verify_crash_recovery",
    "verify_replay",
    "watch_command",
]
