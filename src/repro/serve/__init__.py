"""Live replay & serving: streaming controllers on top of the online layer.

The batch layers materialise a full problem instance and iterate it; this
subsystem drives the same :class:`~repro.online.base.OnlineAlgorithm.step`
contract from a *demand stream* that arrives one tick at a time — the regime
the paper's online algorithms were designed for:

* :class:`ControllerSession` — ``observe(demand_t) -> FleetState`` around any
  registered algorithm, with per-tick wall-latency metering and a
  JSON-serialisable ``checkpoint()/restore()``,
* :mod:`~repro.serve.feed` — trace feeds (scenario specs, JSONL streams,
  synthetic generators) with time-warped playback,
* :class:`ServeEngine` — multi-tenant multiplexing over shared dispatch/grid
  caches (N tenants over one fleet geometry cost far less than N isolated
  sessions),
* :mod:`~repro.serve.telemetry` — per-tick JSONL telemetry, latency
  percentiles and prefix-optimum regret.

The correctness anchor is :func:`verify_replay`: streaming a scenario must
reproduce the batch ``run_online`` schedule exactly and its cost to 1e-9,
including across a mid-stream checkpoint/restore round-trip (``repro serve
smoke`` / ``make serve-smoke`` gate this for every registered family).
"""

from .chaos import ChaosFeed, FaultInjector, verify_chaos_replay
from .engine import ServeEngine, verify_replay
from .feed import (
    ArrayFeed,
    FeedError,
    InstanceFeed,
    JsonlFeed,
    ScenarioFeed,
    SyntheticFeed,
    Tick,
    TraceFeed,
    payload_checksum,
    write_jsonl_trace,
)
from .session import (
    CheckpointCorruptError,
    ControllerSession,
    FleetState,
    SERVE_ALGORITHMS,
    ServeCache,
    build_serve_algorithm,
    fleet_signature,
    load_checkpoint,
)
from .telemetry import TelemetryWriter, latency_percentiles, summarise_sessions

__all__ = [
    "ArrayFeed",
    "ChaosFeed",
    "CheckpointCorruptError",
    "ControllerSession",
    "FaultInjector",
    "FeedError",
    "FleetState",
    "InstanceFeed",
    "JsonlFeed",
    "SERVE_ALGORITHMS",
    "ScenarioFeed",
    "ServeCache",
    "ServeEngine",
    "SyntheticFeed",
    "TelemetryWriter",
    "Tick",
    "TraceFeed",
    "build_serve_algorithm",
    "fleet_signature",
    "latency_percentiles",
    "load_checkpoint",
    "payload_checksum",
    "summarise_sessions",
    "verify_chaos_replay",
    "verify_replay",
]
