"""Dependency-free metrics registry for the serve stack.

One :class:`MetricsRegistry` per engine / worker process holds every
observable quantity behind the serve layer's ``counters()`` / ``report()``
surfaces — cache memo hits, dispatch solver work, batched-round counters,
chaos fault injections, per-tenant SLA accounting and tick-latency
histograms — as named, labelled series:

* :class:`Counter` — monotonically increasing totals (``tensor_hits``,
  ``sla_violations``); the deterministic subset, equality-pinned by the
  ``repro bench --counters`` gate.
* :class:`Gauge` — point-in-time values (``virtual_slots``,
  ``tensor_bytes``); ``deterministic=True`` opts a gauge into the
  deterministic snapshot (wall-clock-ish gauges stay out).
* :class:`Histogram` — fixed-bound distributions; :data:`LATENCY_BUCKETS_NS`
  provides the log-spaced 1µs→1s tick-latency buckets shared with
  :func:`~repro.serve.telemetry.latency_percentiles`.

Hot-path safety: metric objects are plain ``__slots__`` records — an
``inc()`` is one attribute add — and anything too hot to touch per tick
(per-session SLA counters, latency histograms, the dispatch solver's
:class:`DispatchStats`) is synced lazily through *collectors*: callbacks
registered with :meth:`MetricsRegistry.register_collector` that run at
snapshot/scrape time, prometheus-client style.  Collectors are held by weak
reference, so short-lived sessions never leak through the registry.

Cardinality under tenant churn is bounded by ``max_series_per_metric``:
when one metric name accumulates more labelled series than the cap (e.g.
``sla_violations`` across thousands of short-lived tenants), the
least-recently-touched series is evicted and its value folded into a
per-metric ``evicted`` aggregate — registry memory stays flat while totals
remain accountable.

Exposition: :meth:`MetricsRegistry.snapshot` (JSON-safe dict, stamped
``"schema": 1``), :meth:`MetricsRegistry.deterministic_snapshot` (counters +
deterministic gauges only — no wall-clock values, so two identical replays
produce equal snapshots) and :meth:`MetricsRegistry.prometheus_text`
(text-format exposition for a scrape endpoint or file drop).
"""

from __future__ import annotations

import weakref
from bisect import bisect_left
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "LATENCY_BUCKETS_NS",
    "METRICS_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Version stamp carried by every snapshot (and the telemetry rows /
#: checkpoint-adjacent files that embed them).  Readers accept versionless
#: legacy payloads.
METRICS_SCHEMA_VERSION = 1

#: Fixed log-spaced tick-latency histogram bounds in integer nanoseconds:
#: four buckets per decade from 1µs to 1s (every serve tick from the
#: microsecond hot path to a pathological stall lands in a stable bucket, so
#: histograms from different runs are directly comparable).
LATENCY_BUCKETS_NS = tuple(int(round(10 ** (3 + k / 4))) for k in range(25))

#: Default per-metric series cap (see the module docstring on churn).
DEFAULT_MAX_SERIES = 512


def _label_suffix(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing total (float-valued when the domain is)."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount=1) -> None:
        self.value += amount

    def add(self, amount) -> None:
        self.value += amount

    def set(self, value) -> None:
        """Overwrite the total (checkpoint restore / collector sync only)."""
        self.value = value

    @property
    def series(self) -> str:
        return self.name + _label_suffix(self.labels)


class Gauge:
    """A point-in-time value; ``deterministic=True`` joins the pinned subset."""

    __slots__ = ("name", "labels", "value", "deterministic")
    kind = "gauge"

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...] = (),
        deterministic: bool = False,
    ):
        self.name = name
        self.labels = labels
        self.value = 0
        self.deterministic = bool(deterministic)

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    @property
    def series(self) -> str:
        return self.name + _label_suffix(self.labels)


class Histogram:
    """A fixed-bound distribution (cumulative ``le`` semantics at export).

    ``bounds`` must be sorted ascending; an observation lands in the first
    bucket whose bound is >= the value (one trailing overflow bucket catches
    the rest).  :meth:`fill` bulk-loads a sample window, replacing previous
    contents — the collector-sync path for per-tick latencies that are too
    hot to observe individually.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...] = (),
        bounds=LATENCY_BUCKETS_NS,
    ):
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0
        self.count = 0

    def observe(self, value) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def fill(self, values) -> None:
        """Replace the histogram's contents with a bulk sample window."""
        counts = [0] * (len(self.bounds) + 1)
        total = 0
        bounds = self.bounds
        for value in values:
            counts[bisect_left(bounds, value)] += 1
            total += value
        self.counts = counts
        self.sum = total
        self.count = sum(counts)

    def load(self, counts, sum_, count) -> None:
        """Install precomputed bucket counts (the vectorised-sync path).

        ``counts`` must be ``len(bounds) + 1`` entries aligned with
        :meth:`observe`'s bucketing (``bisect_left`` over ``bounds``, one
        trailing overflow bucket); callers with numpy at hand bucket large
        sample windows with ``searchsorted``/``bincount`` and load the result
        here instead of observing one value at a time.
        """
        counts = list(counts)
        if len(counts) != len(self.bounds) + 1:
            raise ValueError(
                f"expected {len(self.bounds) + 1} bucket counts, got {len(counts)}"
            )
        self.counts = counts
        self.sum = sum_
        self.count = count

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }

    @property
    def series(self) -> str:
        return self.name + _label_suffix(self.labels)


class MetricsRegistry:
    """Named, labelled metric series with capped cardinality and collectors.

    ``counter()`` / ``gauge()`` / ``histogram()`` are get-or-create: the
    first call with a given ``(name, labels)`` pair creates the series, later
    calls return the same object (and refresh its recency for the eviction
    order).  Mixing kinds under one name raises.
    """

    def __init__(self, max_series_per_metric: int = DEFAULT_MAX_SERIES):
        if int(max_series_per_metric) < 1:
            raise ValueError(
                f"max_series_per_metric must be >= 1, got {max_series_per_metric}"
            )
        self.max_series_per_metric = int(max_series_per_metric)
        self._families: Dict[str, OrderedDict] = {}
        self._evicted: Dict[str, dict] = {}
        self._collectors: List[weakref.ref] = []
        self._collector_prune_at = 64

    # ------------------------------------------------------------- get/create
    def _get(self, cls, name: str, labels: dict, **kwargs):
        family = self._families.get(name)
        if family is None:
            family = OrderedDict()
            self._families[name] = family
        key = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        metric = family.get(key)
        if metric is not None:
            if type(metric) is not cls:
                raise TypeError(
                    f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
                )
            family.move_to_end(key)
            return metric
        metric = cls(name, key, **kwargs)
        family[key] = metric
        while len(family) > self.max_series_per_metric:
            _, evicted = family.popitem(last=False)
            self._fold_evicted(name, evicted)
        return metric

    def _fold_evicted(self, name: str, metric) -> None:
        agg = self._evicted.get(name)
        if agg is None:
            agg = {"series": 0, "value": 0}
            self._evicted[name] = agg
        agg["series"] += 1
        if isinstance(metric, Histogram):
            agg["value"] += metric.count
        else:
            agg["value"] += metric.value

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, deterministic: bool = False, **labels) -> Gauge:
        gauge = self._get(Gauge, name, labels, deterministic=deterministic)
        if deterministic:
            gauge.deterministic = True
        return gauge

    def histogram(
        self, name: str, bounds=LATENCY_BUCKETS_NS, **labels
    ) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds)

    # -------------------------------------------------------------- collectors
    def register_collector(self, callback: Callable[[], None]) -> None:
        """Register a scrape-time sync callback (held by weak reference).

        Collectors push values that are too hot (or too awkward) to update
        per tick into the registry right before a snapshot is taken — the
        prometheus-client ``collect()`` idiom.  Bound methods are held via
        :class:`weakref.WeakMethod`, so registering a short-lived session's
        collector does not pin the session in memory.
        """
        try:
            ref = weakref.WeakMethod(callback)
        except TypeError:
            ref = weakref.ref(callback)
        self._collectors.append(ref)
        if len(self._collectors) > self._collector_prune_at:
            self._collectors = [r for r in self._collectors if r() is not None]
            self._collector_prune_at = max(64, 2 * len(self._collectors))

    def collect(self) -> None:
        """Run every live collector (dead ones are pruned in passing)."""
        live = []
        for ref in self._collectors:
            callback = ref()
            if callback is None:
                continue
            live.append(ref)
            callback()
        self._collectors = live

    # ------------------------------------------------------------- exposition
    def series_count(self, name: Optional[str] = None) -> int:
        """Resident series — of one metric name, or of the whole registry."""
        if name is not None:
            return len(self._families.get(name, ()))
        return sum(len(family) for family in self._families.values())

    def snapshot(self) -> dict:
        """JSON-safe dump of every resident series (collectors run first).

        The ``evicted`` aggregates are per-snapshot deltas ("evictions since
        the previous snapshot"), reset after being read: beyond the cap,
        live series evicted once are re-created by their collectors on the
        next scrape, so a *cumulative* fold would inflate without bound.
        They are a cardinality-pressure signal, not an exact running total.
        """
        self.collect()
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, dict] = {}
        for name in sorted(self._families):
            for metric in self._families[name].values():
                if isinstance(metric, Counter):
                    counters[metric.series] = metric.value
                elif isinstance(metric, Gauge):
                    gauges[metric.series] = metric.value
                else:
                    histograms[metric.series] = metric.to_dict()
        snap = {
            "schema": METRICS_SCHEMA_VERSION,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "series": self.series_count(),
        }
        if self._evicted:
            snap["evicted"] = {
                name: dict(agg) for name, agg in sorted(self._evicted.items())
            }
            self._evicted = {}
        return snap

    def deterministic_snapshot(self) -> dict:
        """Counters + deterministic gauges only — equality-pinnable.

        Excludes histograms and non-deterministic gauges (anything derived
        from wall clocks), so two bit-identical replays produce *equal*
        snapshots; the ``repro bench --counters`` gate pins the pinned serve
        workload's snapshot against :data:`~repro.bench.PINNED_SERVE_COUNTERS`
        through this path.
        """
        self.collect()
        values: Dict[str, object] = {}
        for name in sorted(self._families):
            for metric in self._families[name].values():
                if isinstance(metric, Counter):
                    values[metric.series] = metric.value
                elif isinstance(metric, Gauge) and metric.deterministic:
                    values[metric.series] = metric.value
        return {"schema": METRICS_SCHEMA_VERSION, "values": values}

    def sum_metric(self, name: str):
        """Sum of one metric's values across all its labelled series."""
        family = self._families.get(name)
        if not family:
            return 0
        return sum(m.value for m in family.values())

    def prometheus_text(self) -> str:
        """Prometheus text-format exposition of every resident series."""
        self.collect()
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if not family:
                continue
            kind = next(iter(family.values())).kind
            lines.append(f"# TYPE {name} {kind}")
            for metric in family.values():
                if isinstance(metric, Histogram):
                    cumulative = 0
                    base = dict(metric.labels)
                    for bound, count in zip(metric.bounds, metric.counts):
                        cumulative += count
                        le = tuple(sorted({**base, "le": repr(bound)}.items()))
                        lines.append(f"{name}_bucket{_label_suffix(le)} {cumulative}")
                    le = tuple(sorted({**base, "le": "+Inf"}.items()))
                    lines.append(f"{name}_bucket{_label_suffix(le)} {metric.count}")
                    lines.append(
                        f"{name}_sum{_label_suffix(metric.labels)} {metric.sum}"
                    )
                    lines.append(
                        f"{name}_count{_label_suffix(metric.labels)} {metric.count}"
                    )
                else:
                    lines.append(f"{metric.series} {metric.value}")
        return "\n".join(lines) + "\n"
