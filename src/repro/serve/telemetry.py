"""Serving telemetry: per-tick JSONL streams and latency/regret summaries.

Every tick of a :class:`~repro.serve.session.ControllerSession` yields a
:class:`~repro.serve.session.FleetState`; a :class:`TelemetryWriter` appends
its flat row — tenant, demand, chosen configuration, tick/cumulative cost,
wall latency, optional prefix-optimum regret — as one JSON line, the format
every log shipper understands.  :func:`latency_percentiles` and
:func:`summarise_sessions` aggregate what ``repro serve replay`` prints and
what ``BENCH_serve.json`` records.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

__all__ = ["TelemetryWriter", "latency_percentiles", "summarise_sessions"]


class TelemetryWriter:
    """Append-only JSONL sink for per-tick telemetry rows.

    Usable as a context manager; ``path=None`` discards rows (a null sink, so
    callers need no conditional plumbing).  Rows are flushed per write: a
    long-lived serving process killed mid-stream keeps every completed tick.
    """

    def __init__(self, path=None):
        self.path = None if path is None else Path(path)
        self._handle = None
        self.rows_written = 0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")

    @property
    def active(self) -> bool:
        """Whether rows actually land anywhere (``False`` for the null sink).

        The batched engine checks this before materialising per-tick
        :class:`~repro.serve.session.FleetState` rows — building 10k telemetry
        rows per round for a sink that discards them would be pure overhead.
        """
        return self._handle is not None

    def write(self, row: dict, tenant: Optional[str] = None) -> None:
        """Append one telemetry row (stamping ``tenant`` when given)."""
        if self._handle is None:
            return
        if tenant is not None:
            row = dict(row, tenant=tenant)
        self._handle.write(json.dumps(row) + "\n")
        self._handle.flush()
        self.rows_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def latency_percentiles(latencies_seconds: Sequence[float]) -> dict:
    """p50/p95/p99/mean/max of a latency sample, in milliseconds."""
    arr = np.asarray(latencies_seconds, dtype=float)
    if arr.size == 0:
        return {"ticks": 0}
    ms = arr * 1e3
    return {
        "ticks": int(arr.size),
        "p50_ms": round(float(np.percentile(ms, 50)), 6),
        "p95_ms": round(float(np.percentile(ms, 95)), 6),
        "p99_ms": round(float(np.percentile(ms, 99)), 6),
        "mean_ms": round(float(np.mean(ms)), 6),
        "max_ms": round(float(np.max(ms)), 6),
    }


def summarise_sessions(sessions, wall_seconds: Optional[float] = None) -> dict:
    """Aggregate summary of a set of sessions (the engine-level report body).

    Pools every session's tick latencies into one percentile summary and, when
    the multiplexing wall time is known, reports aggregate throughput
    (``ticks_per_second``) and tenant turnover (``tenants_per_second`` — full
    replays completed per wall second).
    """
    sessions = list(sessions)
    pooled = (
        np.concatenate([s.latencies_seconds for s in sessions])
        if sessions
        else np.zeros(0)
    )
    total_ticks = int(pooled.size)
    summary = {
        "tenants": len(sessions),
        "total_ticks": total_ticks,
        "total_cost": round(float(sum(s.cumulative_cost for s in sessions)), 9),
        "sla_violations": int(sum(getattr(s, "sla_violations", 0) for s in sessions)),
        "shed_demand": round(
            float(sum(getattr(s, "shed_demand_total", 0.0) for s in sessions)), 9
        ),
        "forced_downs": int(sum(getattr(s, "forced_downs", 0) for s in sessions)),
        "latency": latency_percentiles(pooled),
    }
    if wall_seconds is not None:
        summary["wall_seconds"] = round(float(wall_seconds), 6)
        if wall_seconds > 0:
            summary["ticks_per_second"] = round(total_ticks / wall_seconds, 3)
            summary["tenants_per_second"] = round(len(sessions) / wall_seconds, 3)
    return summary
