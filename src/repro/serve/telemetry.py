"""Serving telemetry: per-tick JSONL streams and latency/regret summaries.

Every tick of a :class:`~repro.serve.session.ControllerSession` yields a
:class:`~repro.serve.session.FleetState`; a :class:`TelemetryWriter` appends
its flat row — tenant, demand, chosen configuration, tick/cumulative cost,
wall latency, optional prefix-optimum regret — as one JSON line, the format
every log shipper understands.  Rows are stamped with ``"schema": 1``
(readers accept versionless legacy rows).  :func:`latency_percentiles` and
:func:`summarise_sessions` aggregate what ``repro serve replay`` prints,
what ``BENCH_serve.json`` records and what ``repro serve watch`` reproduces
from the files.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from .metrics import LATENCY_BUCKETS_NS

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryWriter",
    "latency_percentiles",
    "summarise_sessions",
]

#: Stamped into every telemetry row as ``"schema"``; bump on incompatible
#: row-shape changes.  Readers (``repro serve watch``, the fabric collector)
#: accept rows without the field — pre-versioning streams stay loadable.
TELEMETRY_SCHEMA_VERSION = 1


class TelemetryWriter:
    """Append-only JSONL sink for per-tick telemetry rows.

    Usable as a context manager; ``path=None`` discards rows (a null sink, so
    callers need no conditional plumbing).

    ``flush_every=N`` flushes the OS buffer every N rows — the default N=1
    keeps the historical flush-per-write durability (a serving process killed
    mid-stream keeps every completed tick), larger N amortises the syscall at
    10k-tenant batch scale.  :meth:`flush` forces a flush at any point and
    :meth:`close` always flushes the tail.

    ``rotate_bytes=`` bounds the stream on disk: when the current file
    reaches the threshold (checked at row boundaries) it is rotated to
    ``<path>.1`` — the previous ``.1`` moving to ``.2``, two generations
    kept — and a fresh file is started.
    """

    def __init__(
        self,
        path=None,
        *,
        flush_every: int = 1,
        rotate_bytes: Optional[int] = None,
        schema: bool = True,
    ):
        if int(flush_every) < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        if rotate_bytes is not None and int(rotate_bytes) < 1:
            raise ValueError(f"rotate_bytes must be >= 1, got {rotate_bytes}")
        self.path = None if path is None else Path(path)
        self.flush_every = int(flush_every)
        self.rotate_bytes = None if rotate_bytes is None else int(rotate_bytes)
        self.schema = bool(schema)
        self._handle = None
        self._pending = 0
        self._bytes = 0
        self.rows_written = 0
        self.rotations = 0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
            try:
                self._bytes = os.fstat(self._handle.fileno()).st_size
            except OSError:  # pragma: no cover — exotic filesystems
                self._bytes = 0

    @property
    def active(self) -> bool:
        """Whether rows actually land anywhere (``False`` for the null sink).

        The batched engine checks this before materialising per-tick
        :class:`~repro.serve.session.FleetState` rows — building 10k telemetry
        rows per round for a sink that discards them would be pure overhead.
        """
        return self._handle is not None

    def write(self, row: dict, tenant: Optional[str] = None) -> None:
        """Append one telemetry row (stamping ``tenant`` and the schema version)."""
        if self._handle is None:
            return
        if tenant is not None or (self.schema and "schema" not in row):
            row = dict(row)
            if self.schema and "schema" not in row:
                row["schema"] = TELEMETRY_SCHEMA_VERSION
            if tenant is not None:
                row["tenant"] = tenant
        line = json.dumps(row) + "\n"
        self._handle.write(line)
        self._bytes += len(line)
        self._pending += 1
        self.rows_written += 1
        if self._pending >= self.flush_every:
            self._handle.flush()
            self._pending = 0
        if self.rotate_bytes is not None and self._bytes >= self.rotate_bytes:
            self._rotate()

    def flush(self) -> None:
        """Force any buffered rows to the OS now."""
        if self._handle is not None:
            self._handle.flush()
            self._pending = 0

    def _rotate(self) -> None:
        self._handle.close()
        first = self.path.with_name(self.path.name + ".1")
        second = self.path.with_name(self.path.name + ".2")
        if first.exists():
            os.replace(first, second)
        os.replace(self.path, first)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._bytes = 0
        self._pending = 0
        self.rotations += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def latency_percentiles(
    latencies_seconds: Optional[Sequence[float]] = None,
    *,
    latencies_ns=None,
    histogram: bool = True,
) -> dict:
    """p50/p95/p99/mean/max of a latency sample, in milliseconds.

    Prefers the ns-resolution integer samples (``latencies_ns=``) the serve
    layer meters natively — float-seconds input survives for legacy callers
    and is converted through the same integer-ns domain, so both paths agree
    bit for bit.  Non-empty summaries also carry a ``histogram`` field over
    the fixed :data:`~repro.serve.metrics.LATENCY_BUCKETS_NS` bounds
    (``counts[i]`` pairs with ``bucket_le_ns[i]``; the trailing count is the
    overflow bucket).
    """
    if latencies_ns is not None:
        ns = np.asarray(latencies_ns, dtype=np.int64)
    else:
        arr = np.asarray(
            [] if latencies_seconds is None else latencies_seconds, dtype=float
        )
        ns = np.asarray(np.round(arr * 1e9), dtype=np.int64)
    if ns.size == 0:
        return {"ticks": 0}
    ms = ns * 1e-6
    out = {
        "ticks": int(ns.size),
        "p50_ms": round(float(np.percentile(ms, 50)), 6),
        "p95_ms": round(float(np.percentile(ms, 95)), 6),
        "p99_ms": round(float(np.percentile(ms, 99)), 6),
        "mean_ms": round(float(np.mean(ms)), 6),
        "max_ms": round(float(np.max(ms)), 6),
    }
    if histogram:
        bounds = np.asarray(LATENCY_BUCKETS_NS, dtype=np.int64)
        idx = np.searchsorted(bounds, ns, side="left")
        counts = np.bincount(idx, minlength=bounds.size + 1)
        out["histogram"] = {
            "bucket_le_ns": [int(b) for b in bounds],
            "counts": [int(c) for c in counts],
        }
    return out


def summarise_sessions(sessions, wall_seconds: Optional[float] = None) -> dict:
    """Aggregate summary of a set of sessions (the engine-level report body).

    Pools every session's tick latencies — at native ns resolution — into one
    percentile summary and, when the multiplexing wall time is known, reports
    aggregate throughput (``ticks_per_second``) and tenant turnover
    (``tenants_per_second`` — full replays completed per wall second).
    """
    sessions = list(sessions)
    pooled = (
        np.concatenate([_session_latencies_ns(s) for s in sessions])
        if sessions
        else np.zeros(0, dtype=np.int64)
    )
    total_ticks = int(pooled.size)
    summary = {
        "tenants": len(sessions),
        "total_ticks": total_ticks,
        "total_cost": round(float(sum(s.cumulative_cost for s in sessions)), 9),
        "sla_violations": int(sum(getattr(s, "sla_violations", 0) for s in sessions)),
        "shed_demand": round(
            float(sum(getattr(s, "shed_demand_total", 0.0) for s in sessions)), 9
        ),
        "forced_downs": int(sum(getattr(s, "forced_downs", 0) for s in sessions)),
        "latency": latency_percentiles(latencies_ns=pooled),
    }
    if wall_seconds is not None:
        summary["wall_seconds"] = round(float(wall_seconds), 6)
        if wall_seconds > 0:
            summary["ticks_per_second"] = round(total_ticks / wall_seconds, 3)
            summary["tenants_per_second"] = round(len(sessions) / wall_seconds, 3)
    return summary


def _session_latencies_ns(session) -> np.ndarray:
    ns = getattr(session, "latencies_ns", None)
    if ns is not None:
        return np.asarray(ns, dtype=np.int64)
    seconds = np.asarray(session.latencies_seconds, dtype=float)
    return np.asarray(np.round(seconds * 1e9), dtype=np.int64)
