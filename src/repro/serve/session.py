"""Streaming controller sessions: one online algorithm behind an ``observe`` API.

Everything in the repo before this module is batch-shaped — a full
:class:`~repro.core.instance.ProblemInstance` is materialised, then
:func:`~repro.online.base.run_online` iterates its slots.  A
:class:`ControllerSession` inverts that control flow for the serving regime the
paper's algorithms were designed for: demand arrives one tick at a time
(``observe(demand_t) -> FleetState``), the session reveals exactly one
:class:`~repro.online.base.SlotInfo` per tick to the wrapped algorithm, and
nothing about future ticks — not even the horizon — exists anywhere in the
process.  The information model is therefore *structurally* enforced rather
than merely promised by the driver loop.

Correctness anchor
------------------
Replaying an instance's demand trace through a session must reproduce the
batch ``run_online`` schedule exactly and its total cost to 1e-9 — including
across a mid-stream :meth:`ControllerSession.checkpoint` /
:meth:`ControllerSession.restore` round-trip.  This holds because

* each tick is solved by the same single-slot dispatch query batch
  ``run_online`` issues (one ``solve_block([t], configs)`` per slot — no
  cross-demand warm starts that could perturb last bits),
* the per-tick grid tensors served to the trackers are bit-identical to the
  batch path's, and
* :meth:`checkpoint` serialises every decision-relevant byte of algorithm and
  tracker state via the ``state_dict`` protocol of
  :class:`~repro.online.base.OnlineAlgorithm` (float64 values round-trip
  exactly through JSON).

Multi-tenant sharing
--------------------
Sessions draw all dispatch work from a :class:`ServeCache`.  The cache owns an
append-only demand ledger (one *virtual slot* per distinct ``(demand, cost
row)`` observation) behind a shared
:class:`~repro.dispatch.allocation.DispatchSolver`, plus a whole-grid
operating-cost tensor memo keyed by dispatch signature — the serve-side
analogue of the sweep engine's :class:`~repro.online.base.SlotContext`.  Many
sessions over the same fleet geometry share one cache: the first tenant to
observe a demand level pays the dual bisection, every other tenant's tick is a
dictionary hit (see ``repro serve bench`` / ``BENCH_serve.json``).
"""

from __future__ import annotations

import json
import math
import os
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..core.schedule import Schedule
from ..core.server import ServerType
from ..dispatch.allocation import DispatchSolver
from ..online.algorithm_a import AlgorithmA
from ..online.algorithm_b import AlgorithmB
from ..online.algorithm_c import AlgorithmC
from ..online.baselines import AllOn, FollowDemand, Reactive
from ..online.base import OnlineAlgorithm, OnlineContext, SlotInfo
from ..online.lcp import LazyCapacityProvisioning
from ..online.tracker import DPPrefixTracker
from .feed import payload_checksum
from .metrics import MetricsRegistry

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointCorruptError",
    "ControllerSession",
    "FleetState",
    "ServeCache",
    "SERVE_ALGORITHMS",
    "build_serve_algorithm",
    "fleet_signature",
    "load_checkpoint",
    "previous_checkpoint_path",
    "save_checkpoint",
]


CHECKPOINT_VERSION = 1

DEGRADATION_MODES = ("strict", "shed")

#: Latency samples a ``history=False`` session keeps for its percentiles.
COMPACT_LATENCY_WINDOW = 512


class CheckpointCorruptError(ValueError):
    """A checkpoint payload failed integrity validation (checksum mismatch).

    Distinct from the plain :class:`ValueError` raised for version/algorithm
    mismatches: a corrupt checkpoint means the bytes rotted, not that the
    caller rebuilt the wrong session around them.
    """


def previous_checkpoint_path(path) -> Path:
    """Where :func:`save_checkpoint` rotates the previous intact checkpoint."""
    path = Path(path)
    return path.with_name(path.name + ".prev")


def save_checkpoint(path, payload: dict, keep_previous: bool = True) -> Path:
    """Atomically write a checkpoint payload to disk (crash-safe).

    The payload is serialised to a ``.tmp`` sibling, fsynced, and moved into
    place with :func:`os.replace` — a crash (or SIGKILL) at any instant leaves
    either the old intact file or the new intact file, never a torn one.  With
    ``keep_previous`` (default) the existing checkpoint is first rotated to
    ``<name>.prev``, also atomically, so even a payload that was *corrupt
    before it was written* (a bug upstream of the write) leaves a good
    fallback for :func:`load_checkpoint`.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload))
        handle.flush()
        os.fsync(handle.fileno())
    if keep_previous and path.exists():
        os.replace(path, previous_checkpoint_path(path))
    os.replace(tmp, path)
    return path


def _read_checkpoint(path, retries: int, retry_delay: float) -> dict:
    """One checkpoint file → validated payload (no fallback)."""
    delay = float(retry_delay)
    text = None
    for attempt in range(int(retries) + 1):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            break
        except OSError:
            if attempt == retries:
                raise
            time.sleep(delay)
            delay *= 2
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointCorruptError(f"checkpoint {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise CheckpointCorruptError(
            f"checkpoint {path} must contain a JSON object, got {type(payload).__name__}"
        )
    claimed = payload.get("checksum")
    if claimed is not None:
        body = {k: v for k, v in payload.items() if k != "checksum"}
        actual = payload_checksum(body)
        if claimed != actual:
            raise CheckpointCorruptError(
                f"checkpoint {path} failed integrity validation: payload says "
                f"{claimed}, content is {actual}"
            )
    return payload


def load_checkpoint(
    path, retries: int = 0, retry_delay: float = 0.05, fallback: bool = True
) -> dict:
    """Read a checkpoint file, retrying transient I/O errors with backoff.

    Undecodable JSON and integrity-checksum mismatches raise
    :class:`CheckpointCorruptError` naming the file (truncated or bit-rotted
    checkpoints fail loudly here, before a half-restored session exists).
    With ``fallback`` (default), a corrupt or missing primary file falls back
    to the previous intact checkpoint rotated aside by :func:`save_checkpoint`
    — the recovery path after a crash that outran the checkpoint cadence; the
    original error propagates only when the fallback is also unusable.
    """
    try:
        return _read_checkpoint(path, retries, retry_delay)
    except (CheckpointCorruptError, OSError) as exc:
        previous = previous_checkpoint_path(path)
        if not fallback or not previous.exists():
            raise
        try:
            return _read_checkpoint(previous, retries, retry_delay)
        except (CheckpointCorruptError, OSError):
            raise exc from None


# --------------------------------------------------------------------------- #
# Algorithm construction
# --------------------------------------------------------------------------- #

# Serve-side builders construct *private* per-session state (plain trackers,
# never shared value streams): tenants advance at independent rates, so the
# lock-step slot sequence a SharedValueStream trusts does not exist here.
SERVE_ALGORITHMS: Dict[str, callable] = {
    "A": lambda params: AlgorithmA(gamma=params.get("gamma")),
    "B": lambda params: AlgorithmB(gamma=params.get("gamma")),
    "C": lambda params: AlgorithmC(
        epsilon=params.get("epsilon", 0.25),
        gamma=params.get("gamma"),
        max_sub_slots=params.get("max_sub_slots", 1000),
    ),
    "lcp": lambda params: LazyCapacityProvisioning(
        gamma=params.get("gamma"),
        allow_heterogeneous=params.get("allow_heterogeneous", True),
    ),
    "reactive": lambda params: Reactive(),
    "follow-demand": lambda params: FollowDemand(),
    "all-on": lambda params: AllOn(),
}


def build_serve_algorithm(algorithm, **params) -> OnlineAlgorithm:
    """Resolve an algorithm argument into a fresh :class:`OnlineAlgorithm`.

    Accepts a ready instance (returned as-is), a registry kind (``"A"``,
    ``"lcp"``, ...), or a dict ``{"kind": ..., "params": {...}}``; the
    equivalence tests build their batch reference through this same function
    so both sides run identically-constructed algorithms.
    """
    if isinstance(algorithm, OnlineAlgorithm):
        if params:
            raise ValueError("params only apply when building from a registry kind")
        return algorithm
    if isinstance(algorithm, dict):
        merged = dict(algorithm.get("params", {}))
        merged.update(params)
        return build_serve_algorithm(algorithm["kind"], **merged)
    builder = SERVE_ALGORITHMS.get(algorithm)
    if builder is None:
        raise KeyError(
            f"unknown serve algorithm {algorithm!r} (known: {sorted(SERVE_ALGORITHMS)})"
        )
    return builder(params)


def fleet_signature(server_types) -> tuple:
    """Content key of a fleet geometry (used to group sessions onto one cache).

    Cost functions hash by identity for most classes, so two *materialisations*
    of the same scenario produce different signatures — sharing is only real
    when tenants genuinely hold the same fleet objects, which is exactly when
    the dispatch caches can serve each other's queries.
    """
    return tuple(
        (st.name, int(st.count), float(st.switching_cost), float(st.capacity), st.cost_function)
        for st in server_types
    )


# --------------------------------------------------------------------------- #
# Shared dispatch state
# --------------------------------------------------------------------------- #


class _StreamInstance:
    """Append-only stand-in for the :class:`ProblemInstance` a solver reads.

    The dispatch engine touches only ``d``, ``zmax``, ``demand[t]`` and
    ``cost_row(t)`` — and only for slots it is queried about — so a growable
    ledger satisfies the same contract without a horizon.  Each appended entry
    is one *virtual slot*: a distinct ``(demand, cost row)`` observation of
    some session.
    """

    def __init__(self, server_types):
        self.server_types = tuple(server_types)
        for st in self.server_types:
            if not isinstance(st, ServerType):
                raise TypeError(f"server_types entries must be ServerType, got {type(st)!r}")
        self.demand: List[float] = []
        self._rows: List[tuple] = []
        self._zmax = np.array([st.capacity for st in self.server_types], dtype=float)
        self._beta = np.array([st.switching_cost for st in self.server_types], dtype=float)
        self._m = np.array([st.count for st in self.server_types], dtype=int)
        self._base_row = tuple(st.cost_function for st in self.server_types)

    @property
    def d(self) -> int:
        return len(self.server_types)

    @property
    def T(self) -> int:
        return len(self.demand)

    @property
    def zmax(self) -> np.ndarray:
        return self._zmax

    @property
    def beta(self) -> np.ndarray:
        return self._beta

    @property
    def m(self) -> np.ndarray:
        return self._m

    @property
    def base_cost_row(self) -> tuple:
        return self._base_row

    def cost_row(self, t: int) -> tuple:
        return self._rows[t]

    def append(self, demand: float, row: tuple) -> int:
        self.demand.append(float(demand))
        self._rows.append(row)
        return len(self.demand) - 1

    def replace(self, vt: int, demand: float, row: tuple) -> int:
        """Reuse ledger slot ``vt`` for a new observation (LRU eviction path).

        The caller must invalidate any per-*index* caches downstream (the
        dispatch solver's slot-signature memo); content-keyed caches stay
        valid because the old content's entries simply stop being queried.
        """
        self.demand[vt] = float(demand)
        self._rows[vt] = row
        return vt


class ServeCache:
    """Shared dispatch solver + grid-tensor memo for one fleet geometry.

    One cache serves any number of concurrent sessions whose fleets are the
    *same objects* (same :class:`ServerType` tuple).  Observations are
    deduplicated into virtual slots of the underlying ledger, the solver's
    signature-level block cache dedups further (price-scaled rows collapse
    onto their base row), and whole-grid operating-cost tensors are memoised
    per ``(signature, scale, grid)`` so N tenants asking for the tensor of one
    demand level trigger exactly one dual bisection.

    Unbounded-stream hardening (the :class:`SlotContext
    <repro.online.base.SlotContext>` ``tensor_budget_bytes`` pattern, applied
    serve-side): a month-scale stream of *continuous* demands would otherwise
    grow the ledger and the tensor memo without bound.

    * ``tensor_budget_bytes`` caps the grid-tensor memo with LRU eviction
      (and routes the underlying solves around the dispatcher's own unbounded
      block cache), and
    * ``ledger_budget`` caps the demand ledger at that many virtual slots:
      the least-recently-observed ``(demand, cost row)`` entry is evicted and
      its ledger index *reused* for the new observation, so the ledger —
      and the per-index slot-signature memo behind it — stays flat.

    Eviction changes nothing numerically: a re-observed evicted level is
    simply re-solved (single-slot queries are bit-identical by construction),
    which is what the eviction counters in :meth:`counters` price out.

    Hot-path fast maps
    ------------------
    On quantised streams the steady-state tick never needs a dual bisection:
    every quantity is a pure function of ``(virtual slot, grid or config)``.
    Three flat dictionaries shortcut the per-tick bookkeeping of the general
    machinery — ``_vt_base`` (demand → ledger slot for base-cost-row ticks,
    skipping the LRU OrderedDict), ``_fast_tensors`` (ledger slot → grid
    tensors, skipping signature/key assembly), and ``_fast_solves`` (ledger
    slot → per-configuration :class:`DispatchResult`, skipping the solver's
    array/tuple key construction).  Every fast entry is *installed from the
    slow path's own result*, so a fast hit is bit-identical to a miss by
    construction; hits are counted in ``table_gathers``.  The demand and
    tensor fast maps are disabled under ``ledger_budget`` /
    ``tensor_budget_bytes`` respectively, where eviction recency matters and a
    flat mirror would leak evicted entries.  :meth:`prewarm` fills all three
    for a known demand alphabet up front (and returns the resulting
    :class:`~repro.dispatch.tables.SolutionTable`), moving even the
    *first-seen* bisections off the tick path.
    """

    def __init__(
        self,
        server_types,
        tensor_budget_bytes: Optional[int] = None,
        ledger_budget: Optional[int] = None,
        warm_start: bool = False,
        *,
        metrics: Optional[MetricsRegistry] = None,
        metrics_label: Optional[str] = None,
    ):
        if ledger_budget is not None and int(ledger_budget) < 1:
            raise ValueError(f"ledger_budget must be >= 1, got {ledger_budget}")
        if tensor_budget_bytes is not None and int(tensor_budget_bytes) < 0:
            raise ValueError(
                f"tensor_budget_bytes must be >= 0, got {tensor_budget_bytes}"
            )
        self.stream = _StreamInstance(server_types)
        self.dispatcher = DispatchSolver(self.stream, warm_start=warm_start)
        self.signature = fleet_signature(self.stream.server_types)
        self.tensor_budget_bytes = (
            None if tensor_budget_bytes is None else int(tensor_budget_bytes)
        )
        self.ledger_budget = None if ledger_budget is None else int(ledger_budget)
        self._virtual: OrderedDict = OrderedDict()
        self._tensors: OrderedDict = OrderedDict()
        self._tensor_bytes = 0
        # cache counters live in the metrics registry (one series per cache
        # label); engines label their caches "cache0", "cache1", ... in
        # creation order so deterministic snapshots are stable across runs
        if metrics is None:
            metrics = MetricsRegistry()
        if metrics_label is None:
            metrics_label = f"cache{metrics.series_count('tensor_hits')}"
        self.metrics = metrics
        self.metrics_label = str(metrics_label)
        label = {"cache": self.metrics_label}
        self._c_tensor_hits = metrics.counter("tensor_hits", **label)
        self._c_tensor_misses = metrics.counter("tensor_misses", **label)
        self._c_tensor_evictions = metrics.counter("tensor_evictions", **label)
        self._c_ledger_evictions = metrics.counter("ledger_evictions", **label)
        self._c_table_gathers = metrics.counter("table_gathers", **label)
        self._g_prewarmed = metrics.gauge(
            "prewarmed_levels", deterministic=True, **label
        )
        metrics.register_collector(self._collect_metrics)
        self._vt_base: dict = {}
        self._fast_tensors: dict = {}
        self._fast_solves: dict = {}

    def _collect_metrics(self) -> None:
        """Scrape-time sync of the dispatch solver's stats into the registry."""
        stats = self.dispatcher.stats
        metrics = self.metrics
        label = {"cache": self.metrics_label}
        metrics.counter("block_calls", **label).set(stats.block_calls)
        metrics.counter("slot_queries", **label).set(stats.slot_queries)
        metrics.counter("unique_solves", **label).set(stats.unique_solves)
        metrics.counter("warm_hits", **label).set(stats.warm_hits)
        metrics.counter("cold_solves", **label).set(stats.cold_solves)
        metrics.gauge("virtual_slots", deterministic=True, **label).set(
            self.virtual_slots
        )
        metrics.gauge("tensor_bytes", deterministic=True, **label).set(
            self._tensor_bytes
        )
        metrics.gauge("cache_hit_rate", **label).set(
            round(stats.cache_hit_rate, 6)
        )

    # backwards-compatible counter attributes, now reading the registry series
    @property
    def tensor_hits(self) -> int:
        return int(self._c_tensor_hits.value)

    @property
    def tensor_misses(self) -> int:
        return int(self._c_tensor_misses.value)

    @property
    def tensor_evictions(self) -> int:
        return int(self._c_tensor_evictions.value)

    @property
    def ledger_evictions(self) -> int:
        return int(self._c_ledger_evictions.value)

    @property
    def table_gathers(self) -> int:
        return int(self._c_table_gathers.value)

    @property
    def prewarmed_levels(self) -> int:
        return int(self._g_prewarmed.value)

    @property
    def server_types(self) -> tuple:
        return self.stream.server_types

    @property
    def virtual_slots(self) -> int:
        """Resident ledger slots (distinct observations, net of slot reuse)."""
        return self.stream.T

    def virtual_slot(self, demand: float, row: tuple) -> int:
        """The ledger index of a ``(demand, cost row)`` observation (appending if new)."""
        try:
            key = (demand, row)
            vt = self._virtual.get(key)
        except TypeError:  # unhashable exotic cost row: ledger it per occurrence
            key = None
            vt = None
        if vt is not None:
            self._virtual.move_to_end(key)
            return vt
        if (
            key is not None
            and self.ledger_budget is not None
            and len(self._virtual) >= self.ledger_budget
        ):
            # evict the least-recently-observed level and reuse its slot; the
            # solver's per-index signature memo must forget the old content
            # (unhashable-row slots bypass the map and stay append-only:
            # their ("slot", index) signatures pin the index's identity)
            _, vt = self._virtual.popitem(last=False)
            self.stream.replace(vt, demand, row)
            self.dispatcher._sig_cache.pop(vt, None)
            self._fast_tensors.pop(vt, None)
            self._fast_solves.pop(vt, None)
            self._c_ledger_evictions.inc()
        else:
            vt = self.stream.append(demand, row)
        if key is not None:
            self._virtual[key] = vt
        return vt

    def virtual_slot_base(self, demand: float) -> int:
        """Ledger slot of a base-cost-row observation — the tick fast path.

        One flat float-keyed dict instead of the ``(demand, row)`` tuple hash
        and LRU bookkeeping of :meth:`virtual_slot`.  Only active on unbounded
        ledgers (no eviction ⇒ slot indices are stable and recency is
        irrelevant); budgeted caches always take the slow path.
        """
        vt = self._vt_base.get(demand)
        if vt is not None:
            return vt
        vt = self.virtual_slot(demand, self.stream.base_cost_row)
        if self.ledger_budget is None:
            self._vt_base[demand] = vt
        return vt

    def grid_tensor(self, vt: int, grid) -> np.ndarray:
        """Memoised value tensor of ``g_t`` over ``grid`` at virtual slot ``vt``.

        Computed by the same single-slot query the batch ``run_online`` path
        issues, so the tensor is bit-identical to the batch one; keyed by
        dispatch signature, so sessions (and tenants) sharing a demand level
        share one tensor.  Repeat ``(slot, grid)`` pairs are served from a
        flat per-slot fast map (installed from this method's own result, so
        fast hits return the identical array object).
        """
        fast = self._fast_tensors.get(vt)
        if fast is not None:
            hit = fast.get(id(grid))
            if hit is not None and hit[0] is grid:
                self._c_tensor_hits.inc()
                self._c_table_gathers.inc()
                return hit[1]
        sig, scale = self.dispatcher._slot_signature(vt)
        key = (sig, scale, grid.key)
        tensor = self._tensors.get(key)
        if tensor is None:
            self._c_tensor_misses.inc()
            if self.tensor_budget_bytes is None:
                costs, _ = self.dispatcher.solve_grid(vt, grid.configs())
            else:
                # a budgeted memo must not mirror whole-grid blocks into the
                # dispatcher's unbounded block cache
                block_costs, _ = self.dispatcher.solve_block(
                    [vt], grid.configs(), memoise=False
                )
                costs = block_costs[0]
            tensor = costs.reshape(grid.shape)
            self._tensors[key] = tensor
            self._tensor_bytes += tensor.nbytes
            self._evict_tensors()
        else:
            self._c_tensor_hits.inc()
            self._tensors.move_to_end(key)
        if self.tensor_budget_bytes is None:
            # the entry holds a strong ref to the grid, pinning its id
            if fast is None:
                fast = self._fast_tensors.setdefault(vt, {})
            fast[id(grid)] = (grid, tensor)
        return tensor

    def solve_config(self, vt: int, rounded: np.ndarray) -> "DispatchResult":
        """Per-configuration dispatch at a virtual slot — the tick fast path.

        Misses delegate to ``dispatcher.solve`` (the exact call the slow tick
        path makes) and install its :class:`DispatchResult`, so a fast hit
        returns the identical object the cold path would.
        """
        sub = self._fast_solves.get(vt)
        if sub is None:
            sub = {}
            self._fast_solves[vt] = sub
        key = rounded.tobytes()
        hit = sub.get(key)
        if hit is None:
            hit = self.dispatcher.solve(vt, rounded)
            sub[key] = hit
        else:
            self._c_table_gathers.inc()
        return hit

    def prewarm(self, levels, cost_row=None, grid=None) -> "SolutionTable":
        """Precompute the full demand-level × configuration solution table.

        For every level of a known demand alphabet (``quantise_trace`` bins),
        runs the *exact* queries a cold tick would — the whole-grid tensor
        build (when ``grid`` is given) and the per-configuration single-slot
        solves — and installs their results into the fast maps, so first-seen
        demand levels stop paying dual bisections on the tick path.  Returns
        the resulting :class:`~repro.dispatch.tables.SolutionTable` (built
        from the per-config solves; configurations come from ``grid`` when
        given, else from the full fleet grid implied by the server counts).

        Because every row is produced by the cold path itself, serving ticks
        from a prewarmed cache is bit-identical to a cold replay — which the
        table-vs-solver equality sweep (``tests/test_hotpath.py``) gates for
        every registered scenario family.
        """
        from ..dispatch.tables import SolutionTable
        from ..offline.state_grid import StateGrid

        if grid is None:
            grid = StateGrid.full(self.stream.m)
        row = self.stream.base_cost_row if cost_row is None else tuple(cost_row)
        configs = grid.configs()
        levels = [float(v) for v in levels]
        costs = np.empty((len(levels), len(configs)), dtype=float)
        loads = np.empty((len(levels), len(configs), self.stream.d), dtype=float)
        for i, level in enumerate(levels):
            vt = self.virtual_slot(level, row)
            if cost_row is None and self.ledger_budget is None:
                self._vt_base.setdefault(level, vt)
            self.grid_tensor(vt, grid)
            sub = self._fast_solves.setdefault(vt, {})
            for c, config in enumerate(configs):
                rounded = np.asarray(config, dtype=int)
                result = sub.get(rounded.tobytes())
                if result is None:
                    result = self.dispatcher.solve(vt, rounded)
                    sub[rounded.tobytes()] = result
                costs[i, c] = result.cost
                loads[i, c] = result.loads
        self._g_prewarmed.set(max(self.prewarmed_levels, len(levels)))
        return SolutionTable(levels, configs, costs, loads)

    def _evict_tensors(self) -> None:
        if self.tensor_budget_bytes is None:
            return
        while self._tensor_bytes > self.tensor_budget_bytes and len(self._tensors) > 1:
            _, evicted = self._tensors.popitem(last=False)
            self._tensor_bytes -= evicted.nbytes
            self._c_tensor_evictions.inc()

    def counters(self) -> dict:
        """JSON-safe sharing counters (dispatch stats + memo hits + evictions).

        The historical dict shape, now read from the metrics registry
        series (plus the solver's live :class:`DispatchStats`) — the full
        labelled view is :meth:`MetricsRegistry.snapshot` on
        :attr:`metrics`.
        """
        stats = self.dispatcher.stats
        return {
            "virtual_slots": self.virtual_slots,
            "tensor_hits": self.tensor_hits,
            "tensor_misses": self.tensor_misses,
            "tensor_evictions": self.tensor_evictions,
            "tensor_bytes": self._tensor_bytes,
            "ledger_evictions": self.ledger_evictions,
            "table_gathers": self.table_gathers,
            "prewarmed_levels": self.prewarmed_levels,
            "block_calls": stats.block_calls,
            "slot_queries": stats.slot_queries,
            "unique_solves": stats.unique_solves,
            "cache_hit_rate": round(stats.cache_hit_rate, 6),
            "warm_hits": stats.warm_hits,
            "cold_solves": stats.cold_solves,
        }


# --------------------------------------------------------------------------- #
# Session
# --------------------------------------------------------------------------- #


@dataclass(frozen=True, eq=False)
class FleetState:
    """What the controller decided for one tick, plus running telemetry."""

    t: int
    demand: float
    config: np.ndarray
    operating_cost: float
    switching_cost: float
    cumulative_cost: float
    loads: np.ndarray
    feasible: bool
    #: End-to-end ``observe`` wall time in integer nanoseconds
    #: (``time.perf_counter_ns``): sub-50µs ticks would be quantisation noise
    #: in float-seconds arithmetic accumulated over long windows.
    latency_ns: int
    #: Optimal cost of the observed prefix (``nan`` unless regret tracking is on).
    prefix_optimum_cost: float = float("nan")
    #: Demand actually dispatched this tick (== ``demand`` unless load was shed).
    served_demand: float = float("nan")
    #: Offered demand that could not be served this tick (shed mode only).
    shed_demand: float = 0.0
    #: Whether this tick violated the SLA (shed load or clamped configuration).
    sla_violation: bool = False
    #: Machines the environment forced down below the algorithm's choice.
    forced_down: int = 0

    @property
    def tick_cost(self) -> float:
        return self.operating_cost + self.switching_cost

    @property
    def latency_seconds(self) -> float:
        """Tick latency converted to seconds at read time."""
        return self.latency_ns * 1e-9

    @property
    def regret(self) -> float:
        """Cumulative online cost minus the offline optimum of the observed prefix."""
        return self.cumulative_cost - self.prefix_optimum_cost

    def as_row(self) -> dict:
        """Flat JSON-safe telemetry row (one JSONL line per tick)."""
        row = {
            "t": int(self.t),
            "demand": float(self.demand),
            "config": [int(v) for v in self.config],
            "operating_cost": float(self.operating_cost),
            "switching_cost": float(self.switching_cost),
            "tick_cost": float(self.tick_cost),
            "cumulative_cost": float(self.cumulative_cost),
            "loads": [float(v) for v in self.loads],
            "feasible": bool(self.feasible),
            "sla_violation": bool(self.sla_violation),
            "latency_ms": round(self.latency_ns * 1e-6, 6),
        }
        if self.shed_demand > 0:
            row["served_demand"] = float(self.served_demand)
            row["shed_demand"] = float(self.shed_demand)
        if self.forced_down > 0:
            row["forced_down"] = int(self.forced_down)
        if np.isfinite(self.prefix_optimum_cost):
            row["prefix_optimum_cost"] = float(self.prefix_optimum_cost)
            row["regret"] = float(self.regret)
        return row


class ControllerSession:
    """A long-lived streaming controller around one online algorithm.

    Parameters
    ----------
    algorithm:
        An :class:`OnlineAlgorithm` instance, a registry kind (``"A"``, ...)
        or a ``{"kind", "params"}`` dict — resolved by
        :func:`build_serve_algorithm`.
    server_types:
        The tenant's fleet.  Omit it when ``cache`` is given (the cache's
        fleet is used).
    cache:
        A :class:`ServeCache` to share with other sessions over the same
        fleet geometry; a private cache is created when omitted.
    track_regret:
        Maintain a private exact :class:`DPPrefixTracker` alongside the
        algorithm and report the optimal cost of the observed prefix in every
        :class:`FleetState` (regret telemetry).  Costs one extra DP transition
        per tick; the grid tensors are shared with the algorithm's tracker
        through the cache.
    degradation:
        ``"strict"`` (default) raises on infeasible ticks — demand above the
        tick's fleet capacity, or an algorithm configuration exceeding the
        available machine counts — which is the right behaviour for replay
        gates, where infeasibility means a bug.  ``"shed"`` degrades
        gracefully instead: excess demand is shed deterministically (the
        fleet serves exactly its capacity), configurations are clamped to the
        available counts, and each such tick is accounted as an SLA violation
        in :class:`FleetState` and the session counters.  This is the mode
        chaos injection runs under — a mid-stream fault must cost SLA
        accounting, not a crashed serving process.
    history:
        ``True`` (default) keeps the full per-tick record — every chosen
        configuration and every tick latency — which is what the replay
        gates compare and what :attr:`schedule` serves.  ``history=False``
        is the *compact* mode for month-scale controllers: only
        restore-critical state is kept (tick cursor, previous configuration,
        cumulative costs, SLA counters, algorithm/tracker state) plus a
        bounded window of recent latencies for the percentiles, so both the
        resident session and its :meth:`checkpoint` payload stay O(1) in the
        stream length instead of O(T).
    name:
        Tenant identifier stamped into telemetry rows.
    """

    def __init__(
        self,
        algorithm: Union[OnlineAlgorithm, str, dict] = "A",
        server_types=None,
        *,
        cache: Optional[ServeCache] = None,
        track_regret: bool = False,
        regret_gamma: Optional[float] = None,
        degradation: str = "strict",
        history: bool = True,
        name: str = "tenant",
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ):
        if degradation not in DEGRADATION_MODES:
            raise ValueError(
                f"degradation must be one of {DEGRADATION_MODES}, got {degradation!r}"
            )
        if cache is None:
            if server_types is None:
                raise ValueError("give server_types, a cache, or both")
            cache = ServeCache(server_types)
        elif server_types is not None:
            if fleet_signature(server_types) != cache.signature:
                raise ValueError(
                    "server_types do not match the shared cache's fleet geometry"
                )
        self.cache = cache
        self.name = str(name)
        # kept so checkpoint_roundtrip can build a genuinely fresh algorithm
        # when the session was constructed from a registry kind / spec dict
        self._algorithm_source = algorithm
        self.algorithm = build_serve_algorithm(algorithm)
        stream = cache.stream
        self.context = OnlineContext(
            server_types=stream.server_types,
            beta=stream.beta,
            zmax=stream.zmax,
            base_counts=stream.m,
        )
        self.algorithm.start(self.context)
        self._regret_gamma = regret_gamma
        self._regret_tracker = (
            DPPrefixTracker(gamma=regret_gamma) if track_regret else None
        )
        self.degradation = degradation
        self.history = bool(history)
        self._t = 0
        self._previous = np.zeros(stream.d, dtype=int)
        self._configs: List[np.ndarray] = []
        self._base_capacity = float(np.sum(stream.m * stream.zmax))
        self._beta_list = [float(b) for b in stream.beta]
        # Hot-path SlotInfo reuse: registry-built algorithms (str/dict source)
        # are known not to retain slot references between steps, so the
        # session keeps one frozen SlotInfo per virtual slot and only advances
        # its ``t`` field each tick.  Custom algorithm *objects* get a fresh
        # SlotInfo per tick (they may legally stash the slot).
        self._slot_templates: dict = {}
        self._reuse_slots = isinstance(algorithm, (str, dict))
        # integer perf_counter_ns samples; converted to seconds at report time
        self._latencies = [] if self.history else deque(maxlen=COMPACT_LATENCY_WINDOW)
        self._cum_operating = 0.0
        self._cum_switching = 0.0
        self._feasible = True
        self._sla_violations = 0
        self._shed_total = 0.0
        self._forced_downs = 0
        # Observability: per-tick arithmetic stays on plain attributes (the
        # microsecond hot path), and a weakly-held collector mirrors them
        # into tenant-labelled registry series at snapshot/scrape time —
        # including the tick-latency histogram over the retained window.
        self.metrics = metrics if metrics is not None else cache.metrics
        self.metrics.register_collector(self._collect_metrics)
        #: Optional :class:`~repro.serve.trace.TickTracer`; ``None`` (the
        #: default) costs one branch per ``observe``.
        self._tracer = tracer

    # ------------------------------------------------------------- properties
    @property
    def d(self) -> int:
        return self.cache.stream.d

    @property
    def ticks(self) -> int:
        """Number of ticks observed so far."""
        return self._t

    @property
    def cumulative_cost(self) -> float:
        return self._cum_operating + self._cum_switching

    @property
    def sla_violations(self) -> int:
        """Ticks that shed load or were forced below the chosen configuration."""
        return self._sla_violations

    @property
    def shed_demand_total(self) -> float:
        """Total offered demand shed so far (shed mode only; 0.0 under strict)."""
        return self._shed_total

    @property
    def forced_downs(self) -> int:
        """Total machine-slots the environment forced below the algorithm's choice."""
        return self._forced_downs

    @property
    def schedule(self) -> Schedule:
        """The configurations chosen so far, as a batch-layer :class:`Schedule`."""
        if not self.history and self._t > 0:
            raise ValueError(
                "this session runs history=False (compact mode): per-tick "
                "configurations are not retained, only the restore-critical state"
            )
        if not self._configs:
            return Schedule.empty(0, self.d)
        return Schedule(np.stack(self._configs))

    @property
    def latencies_ns(self) -> np.ndarray:
        """Per-tick wall latency in integer nanoseconds, as metered
        (a bounded recent window under ``history=False``)."""
        return np.asarray(list(self._latencies), dtype=np.int64)

    @property
    def latencies_seconds(self) -> np.ndarray:
        """Per-tick wall latency of every ``observe`` call in seconds,
        converted from the stored nanosecond samples at read time (a bounded
        recent window under ``history=False``)."""
        return np.asarray(list(self._latencies), dtype=float) * 1e-9

    # ------------------------------------------------------------------ ticks
    def observe(self, demand: float, cost_row=None, counts=None) -> FleetState:
        """Feed the next demand tick and return the controller's decision.

        ``cost_row`` optionally reveals this tick's operating-cost functions
        (time-of-day tariffs — Section 3 of the paper) and ``counts`` this
        tick's available fleet (maintenance windows — Section 4.3); both
        default to the static fleet description.  Only *current*-tick
        information ever reaches the algorithm.

        Infeasible ticks — demand above capacity, or a configuration above
        the available counts — raise under ``degradation="strict"`` and shed
        deterministically under ``"shed"`` (see the class docstring).

        The tick is three phases — :meth:`prepare_tick` (validation, shed
        accounting, ledger slot, SlotInfo), :meth:`decide_tick`
        (``algorithm.step`` plus integrality/fleet-limit enforcement) and
        :meth:`commit_tick` (dispatch solve, switching cost, counters) — run
        back to back here.  The batched engine (:mod:`repro.serve.batch`)
        replaces the first two with vectorised cohort equivalents and enters
        at :meth:`observe_batch`; the phase boundaries are state-free, so
        this composed path is bit-identical to the pre-split ``observe``.

        With a :class:`~repro.serve.trace.TickTracer` attached, every
        ``trace_every``-th tick runs the phase-stamped twin
        :meth:`_observe_traced` instead (same calls, same state transitions —
        tracing only reads clocks and counters, so traced replays stay
        bit-identical); unsampled ticks pay a single branch.
        """
        tracer = self._tracer
        if tracer is not None and tracer.should_sample():
            return self._observe_traced(demand, cost_row, counts, tracer)
        started = time.perf_counter_ns()
        demand, served, shed, counts_t, vt, slot = self.prepare_tick(
            demand, cost_row, counts
        )
        rounded, r_list, forced = self.decide_tick(slot, counts_t)
        return self.commit_tick(
            demand, served, shed, vt, rounded, r_list, forced,
            slot=slot, started_ns=started,
        )

    def _observe_traced(self, demand, cost_row, counts, tracer) -> FleetState:
        """The phase-stamped twin of :meth:`observe` (sampled ticks only).

        Stamps ``perf_counter_ns`` at the prepare/decide/commit boundaries
        and attributes the decide span to the dispatch tier that served it —
        ``table`` / ``warm`` / ``cold`` — from the cache counter deltas
        across the tick.
        """
        stats = self.cache.dispatcher.stats
        tick = self._t
        t0 = time.perf_counter_ns()
        demand, served, shed, counts_t, vt, slot = self.prepare_tick(
            demand, cost_row, counts
        )
        warm0 = stats.warm_hits
        cold0 = stats.cold_solves
        t1 = time.perf_counter_ns()
        rounded, r_list, forced = self.decide_tick(slot, counts_t)
        t2 = time.perf_counter_ns()
        state = self.commit_tick(
            demand, served, shed, vt, rounded, r_list, forced,
            slot=slot, started_ns=t0,
        )
        t3 = time.perf_counter_ns()
        if stats.cold_solves != cold0:
            kind = "decide[cold]"
        elif stats.warm_hits != warm0:
            kind = "decide[warm]"
        else:
            kind = "decide[table]"
        name = self.name
        tracer.record("prepare", name, tick, t0, t1)
        tracer.record(kind, name, tick, t1, t2)
        tracer.record("commit", name, tick, t2, t3)
        return state

    def _collect_metrics(self) -> None:
        """Scrape-time sync of the session's counters into the registry.

        Registered weakly at construction: live sessions surface
        tenant-labelled series (tick cursor, SLA counters, the tick-latency
        histogram over the retained window) whenever the registry snapshots;
        dead sessions cost nothing and their stale series age out of the
        capped registry under churn.
        """
        metrics = self.metrics
        label = {"tenant": self.name}
        metrics.counter("ticks", **label).set(self._t)
        metrics.counter("sla_violations", **label).set(self._sla_violations)
        metrics.counter("shed_demand", **label).set(round(self._shed_total, 9))
        metrics.counter("forced_downs", **label).set(self._forced_downs)
        metrics.gauge("cumulative_cost", deterministic=True, **label).set(
            round(self.cumulative_cost, 9)
        )
        hist = metrics.histogram("tick_latency_ns", **label)
        ns = self.latencies_ns
        idx = np.searchsorted(
            np.asarray(hist.bounds, dtype=np.int64), ns, side="left"
        )
        counts = np.bincount(idx, minlength=len(hist.bounds) + 1)
        hist.load(counts.tolist(), int(ns.sum()), int(ns.size))

    def prepare_tick(self, demand: float, cost_row=None, counts=None, build_slot=True):
        """Phase 1 of a tick: validate, resolve shed/capacity, pin the ledger slot.

        Returns ``(demand, served, shed, counts_t, vt, slot)``.  ``slot`` is
        the :class:`SlotInfo` the algorithm will step on (``None`` when
        ``build_slot=False`` — the batched engine resolves decisions from
        cohort tables and never materialises per-tenant slots).
        """
        stream = self.cache.stream
        demand = float(demand)
        if not math.isfinite(demand) or demand < 0:
            raise ValueError(f"demand must be finite and non-negative, got {demand!r}")
        if cost_row is None:
            row = stream.base_cost_row
        else:
            row = tuple(cost_row)
            if len(row) != stream.d:
                raise ValueError(f"cost_row must have {stream.d} entries, got {len(row)}")
        if counts is None:
            counts_t = stream.m
            capacity = self._base_capacity
        else:
            counts_t = np.asarray(counts, dtype=int)
            if counts_t.shape != (stream.d,):
                raise ValueError(f"counts must have shape ({stream.d},), got {counts_t.shape}")
            capacity = float(np.sum(counts_t * stream.zmax))
        served = demand
        shed = 0.0
        if demand > capacity + 1e-9:
            if self.degradation == "strict":
                raise ValueError(
                    f"tick {self._t}: demand {demand:g} exceeds the fleet capacity {capacity:g}"
                )
            # deterministic load shedding: serve exactly the capacity, account
            # for the remainder — the stream keeps flowing, telemetry records
            # the violation
            served = capacity
            shed = demand - capacity

        cache = self.cache
        if cost_row is None:
            vt = cache.virtual_slot_base(served)
        else:
            vt = cache.virtual_slot(served, row)

        if not build_slot:
            return demand, served, shed, counts_t, vt, None

        # a virtual slot pins (served, row), so its SlotInfo is reusable tick
        # to tick — only ``t`` advances (bounded-ledger caches recycle vt ids,
        # which would leave templates stale, hence the unbounded-only gate)
        reusable = (
            self._reuse_slots and counts is None and cache.ledger_budget is None
        )
        slot = self._slot_templates.get(vt) if reusable else None
        if slot is not None:
            object.__setattr__(slot, "t", self._t)
        else:
            def evaluator(batch: np.ndarray, _vt: int = vt) -> np.ndarray:
                costs, _ = cache.dispatcher.solve_grid(_vt, batch)
                return costs

            def grid_evaluator(grid, _vt: int = vt) -> np.ndarray:
                return cache.grid_tensor(_vt, grid)

            slot = SlotInfo(
                t=self._t,
                demand=served,
                cost_functions=row,
                counts=counts_t,
                beta=stream.beta,
                zmax=stream.zmax,
                _evaluator=evaluator,
                _grid_evaluator=grid_evaluator,
            )
            if reusable:
                self._slot_templates[vt] = slot
        return demand, served, shed, counts_t, vt, slot

    def decide_tick(self, slot, counts_t):
        """Phase 2 of a tick: step the algorithm and enforce the decision contract.

        Returns ``(rounded, r_list, forced)`` — the integral configuration
        actually committed, its plain-list mirror, and how many machine-slots
        the environment forced below the algorithm's choice (shed mode).
        """
        stream = self.cache.stream
        choice = np.asarray(self.algorithm.step(slot))
        if choice.shape != (stream.d,):
            raise ValueError(
                f"{self.algorithm.name}: step() must return a configuration of shape "
                f"({stream.d},), got {choice.shape}"
            )
        if choice.dtype.kind in "iu":
            # integer-dtype choices (every registry algorithm) skip the
            # rint/allclose integrality round-trip on the hot path
            rounded = choice.astype(int)
        else:
            rounded = np.rint(choice).astype(int)
            if not np.allclose(choice, rounded, atol=1e-9):
                raise ValueError(
                    f"{self.algorithm.name}: returned a non-integral configuration {choice}"
                )
        r_list = rounded.tolist()
        if min(r_list) < 0:
            raise ValueError(
                f"{self.algorithm.name}: configuration {rounded} has negative entries "
                f"at tick {self._t}"
            )
        forced = 0
        c_list = counts_t.tolist()
        if any(r > c for r, c in zip(r_list, c_list)):
            if self.degradation == "strict":
                raise ValueError(
                    f"{self.algorithm.name}: configuration {rounded} violates fleet limits "
                    f"{counts_t} at tick {self._t}"
                )
            # the environment took machines away under the algorithm's feet
            # (unplanned shrink): force the extra ones down now — the
            # algorithm's internal state keeps wanting them and will power
            # them straight back up when capacity recovers
            forced = int(np.sum(np.maximum(rounded - counts_t, 0)))
            rounded = np.minimum(rounded, counts_t)
            r_list = rounded.tolist()
        return rounded, r_list, forced

    def commit_tick(
        self,
        demand: float,
        served: float,
        shed: float,
        vt: int,
        rounded: np.ndarray,
        r_list,
        forced: int = 0,
        *,
        slot=None,
        started_ns=None,
        latency_ns: int = 0,
        emit: bool = True,
    ) -> Optional[FleetState]:
        """Phase 3 of a tick: solve, account, advance — the pure-state-update half.

        Runs the per-configuration dispatch solve (:meth:`ServeCache.solve_config`
        — memoised, so a batched commit returns the identical
        ``DispatchResult`` object a sequential tick would), the switching-cost
        update, SLA/cumulative counters and the history/previous/tick-cursor
        advance.  ``started_ns`` meters the latency here (single-tenant path);
        the batched engine passes its amortised per-tenant ``latency_ns``
        instead.  ``emit=False`` skips building the :class:`FleetState`
        (telemetry off) and returns ``None``.
        """
        result = self.cache.solve_config(vt, rounded)
        operating = float(result.cost)
        if not math.isfinite(operating):
            self._feasible = False
        switching = 0.0
        for b, r, p in zip(self._beta_list, r_list, self._previous.tolist()):
            if r > p:
                switching += b * (r - p)

        prefix_opt = float("nan")
        if self._regret_tracker is not None:
            if slot is None:
                raise ValueError(
                    "regret-tracked sessions need the tick's SlotInfo; the batched "
                    "engine must route them through the per-tenant slow path"
                )
            self._regret_tracker.observe(slot)
            prefix_opt = self._regret_tracker.prefix_optimum_cost()

        violation = shed > 0 or forced > 0
        if violation:
            self._sla_violations += 1
        self._shed_total += shed
        self._forced_downs += forced
        self._cum_operating += operating
        self._cum_switching += switching
        if self.history:
            self._configs.append(rounded)
        self._previous = rounded
        self._t += 1
        if started_ns is not None:
            latency_ns = time.perf_counter_ns() - started_ns
        self._latencies.append(latency_ns)
        if not emit:
            return None
        return FleetState(
            t=self._t - 1,
            demand=demand,
            config=rounded,
            operating_cost=operating,
            switching_cost=switching,
            cumulative_cost=self.cumulative_cost,
            loads=result.loads,
            feasible=self._feasible,
            latency_ns=latency_ns,
            prefix_optimum_cost=prefix_opt,
            served_demand=served,
            shed_demand=shed,
            sla_violation=violation,
            forced_down=forced,
        )

    def observe_batch(
        self,
        demand: float,
        served: float,
        shed: float,
        vt: int,
        rounded: np.ndarray,
        r_list=None,
        *,
        forced: int = 0,
        latency_ns: int = 0,
        emit: bool = True,
    ) -> Optional[FleetState]:
        """Commit one externally decided tick (the batched engine's entry point).

        The caller — a cohort in :class:`~repro.serve.batch.BatchedServeEngine`
        — has already validated the demand, resolved shed/capacity, pinned the
        ledger slot ``vt`` and chosen ``rounded`` via the vectorised table
        argmin; this method is exactly :meth:`commit_tick`, so the session
        state after it is bit-identical to a sequential :meth:`observe` of the
        same tick.
        """
        if r_list is None:
            r_list = rounded.tolist()
        return self.commit_tick(
            demand, served, shed, vt, rounded, r_list, forced,
            latency_ns=latency_ns, emit=emit,
        )

    def finish(self) -> None:
        """Forward the end-of-stream hook to the wrapped algorithm."""
        self.algorithm.finish()

    # ---------------------------------------------------------------- summary
    def latency_summary(self) -> dict:
        """p50/p95/p99/mean/max tick latency in milliseconds (+ histogram)."""
        from .telemetry import latency_percentiles

        return latency_percentiles(latencies_ns=self.latencies_ns)

    def summary(self) -> dict:
        """JSON-safe session summary (telemetry footer / bench row)."""
        return {
            "tenant": self.name,
            "algorithm": self.algorithm.name,
            "ticks": self.ticks,
            "cumulative_cost": round(self.cumulative_cost, 9),
            "operating_cost": round(self._cum_operating, 9),
            "switching_cost": round(self._cum_switching, 9),
            "feasible": self._feasible,
            "degradation": self.degradation,
            "sla_violations": self._sla_violations,
            "shed_demand": round(self._shed_total, 9),
            "forced_downs": self._forced_downs,
            "latency": self.latency_summary(),
        }

    # ----------------------------------------------------------- checkpointing
    def checkpoint(self) -> dict:
        """JSON-serialisable snapshot of the whole session.

        Captures the tick cursor, cumulative costs, the chosen-configuration
        history and every decision-relevant byte of algorithm/tracker state
        (via the ``state_dict`` protocol).  The fleet description itself is
        *not* serialised — cost functions are code, not data — so restoring
        means: rebuild the session from the same configuration (scenario
        name, algorithm kind), then :meth:`restore` the payload.

        The payload carries an integrity ``checksum`` (CRC-32 over the
        canonical JSON of everything else); :meth:`restore` rejects payloads
        whose content no longer matches it with
        :class:`CheckpointCorruptError`.

        ``history=False`` sessions write *compact* checkpoints: the per-tick
        ``configs`` and ``latencies_ns`` arrays — the only O(T) fields — are
        dropped, leaving a payload whose size is constant in the stream
        length while still restoring to a bit-identical continuation (the
        algorithm state and the previous configuration are what the next
        decision reads; the history is telemetry).
        """
        payload = {
            "version": CHECKPOINT_VERSION,
            "tenant": self.name,
            "algorithm": self.algorithm.name,
            "history": self.history,
            "tick": self._t,
            "previous_config": [int(v) for v in self._previous],
            "cum_operating": self._cum_operating,
            "cum_switching": self._cum_switching,
            "feasible": self._feasible,
            "degradation": self.degradation,
            "sla_violations": self._sla_violations,
            "shed_total": self._shed_total,
            "forced_downs": self._forced_downs,
            "algorithm_state": self.algorithm.state_dict(),
            "regret_state": (
                None if self._regret_tracker is None else self._regret_tracker.state_dict()
            ),
            "regret_gamma": None if self._regret_tracker is None else self._regret_gamma,
        }
        if self.history:
            payload["configs"] = [[int(v) for v in c] for c in self._configs]
            payload["latencies_ns"] = [int(v) for v in self._latencies]
        payload["checksum"] = payload_checksum(payload)
        return payload

    def restore(self, payload: dict) -> "ControllerSession":
        """Load a :meth:`checkpoint` payload into this (freshly built) session.

        Version is checked first (an old payload fails with a version message,
        not a checksum one), then the integrity checksum — a payload whose
        bytes changed since :meth:`checkpoint` raises
        :class:`CheckpointCorruptError`.  Checksum-less payloads from before
        the field existed still load.
        """
        if payload.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {payload.get('version')!r} "
                f"(expected {CHECKPOINT_VERSION})"
            )
        claimed = payload.get("checksum")
        if claimed is not None:
            body = {k: v for k, v in payload.items() if k != "checksum"}
            actual = payload_checksum(body)
            if claimed != actual:
                raise CheckpointCorruptError(
                    f"checkpoint failed integrity validation: payload says {claimed}, "
                    f"content is {actual}"
                )
        if payload.get("algorithm") != self.algorithm.name:
            raise ValueError(
                f"checkpoint was taken from algorithm {payload.get('algorithm')!r} "
                f"but this session runs {self.algorithm.name!r}"
            )
        self._t = int(payload["tick"])
        self._previous = np.asarray(payload["previous_config"], dtype=int)
        # a compact payload restored into any session leaves it compact:
        # the history it would serve was never captured
        self.history = bool(payload.get("history", True))
        self._cum_operating = float(payload["cum_operating"])
        self._cum_switching = float(payload["cum_switching"])
        self._feasible = bool(payload["feasible"])
        # pre-chaos checkpoints carry none of these: default to this
        # session's construction-time mode and zeroed counters
        self.degradation = payload.get("degradation", self.degradation)
        self._sla_violations = int(payload.get("sla_violations", 0))
        self._shed_total = float(payload.get("shed_total", 0.0))
        self._forced_downs = int(payload.get("forced_downs", 0))
        if self.history:
            self._configs = [np.asarray(c, dtype=int) for c in payload["configs"]]
            self._latencies = self._restore_latencies(payload)
        else:
            self._configs = []
            self._latencies = deque(
                self._restore_latencies(payload), maxlen=COMPACT_LATENCY_WINDOW
            )
        self.algorithm.load_state_dict(payload["algorithm_state"])
        regret_state = payload.get("regret_state")
        if regret_state is not None:
            # the checkpoint records the tracker's gamma: a reduced-grid value
            # tensor restored into an exact tracker (or vice versa) would be
            # reshaped against the wrong grid
            regret_gamma = payload.get("regret_gamma")
            if self._regret_tracker is None or self._regret_gamma != regret_gamma:
                self._regret_gamma = regret_gamma
                self._regret_tracker = DPPrefixTracker(gamma=regret_gamma)
            self._regret_tracker.load_state_dict(regret_state)
        return self

    @staticmethod
    def _restore_latencies(payload: dict) -> list:
        """Latency samples of a payload as ns ints (legacy float-second
        payloads from before the ns metering are converted on load)."""
        if "latencies_ns" in payload:
            return [int(v) for v in payload["latencies_ns"]]
        return [int(round(float(v) * 1e9)) for v in payload.get("latencies_s", [])]

    def checkpoint_roundtrip(self, reuse_cache: bool = False) -> "ControllerSession":
        """Serialise through actual JSON text and restore into a fresh session.

        This is the move the serve-smoke gate and ``repro serve replay
        --checkpoint-at`` both make: the round-trip covers the JSON
        encode/decode, not just the in-memory dict.  The fresh session gets a
        cold cache by default (simulating a process restart); ``reuse_cache``
        keeps the warm shared cache instead.  When the session was built from
        an :class:`OnlineAlgorithm` *object* (not a registry kind), that
        object is reused — its state is overwritten by the restore.
        """
        payload = json.loads(json.dumps(self.checkpoint()))
        kwargs = dict(
            track_regret=self._regret_tracker is not None,
            regret_gamma=self._regret_gamma,
            degradation=self.degradation,
            history=self.history,
            name=self.name,
            tracer=self._tracer,
        )
        if reuse_cache:
            fresh = ControllerSession(self._algorithm_source, cache=self.cache, **kwargs)
        else:
            fresh = ControllerSession(
                self._algorithm_source, self.cache.server_types, **kwargs
            )
        return fresh.restore(payload)
