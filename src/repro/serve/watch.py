"""``repro serve watch`` — a live terminal dashboard over serve artifacts.

The serve stack already *emits* everything an operator needs — per-tick
telemetry JSONL (:class:`~repro.serve.telemetry.TelemetryWriter`), fabric
heartbeat/result files, rotated checkpoints — but reading raw JSONL mid-run
is miserable.  This module is the read side: it tails those files and renders
per-tenant tick rate, latency percentiles, cost (and regret when the stream
carries prefix optima), SLA/shed counters, breaker states and worker
liveness, refreshing in place.

Two source modes, picked by what ``PATH`` is:

* **telemetry mode** (``PATH`` is a ``.jsonl`` file) — incremental tail of a
  per-tick telemetry stream.  The aggregation is *exact*: ``latency_ms`` is
  written as ``round(ns * 1e-6, 6)``, i.e. at 1 ns resolution, so
  :class:`WatchModel` recovers the integer nanoseconds bit for bit and its
  :meth:`WatchModel.summary` reproduces
  :func:`~repro.serve.telemetry.summarise_sessions` **equality-exactly** —
  which is what ``make watch-smoke`` asserts via ``--expect``.
* **fabric mode** (``PATH`` is a fabric run directory) — scans
  ``worker-*/heartbeat.json`` for liveness (heartbeat age vs a staleness
  threshold), ``worker-*/result.json`` for per-tenant status/breaker rows,
  and ``*.ckpt.json`` checkpoints for durable totals.

Rendering is dependency-free: ANSI in-place refresh for the live TUI,
``--once`` for a single frame (CI-friendly), ``--html`` for a self-contained
static page, ``--json`` for the machine-readable summary.  Readers accept
versionless legacy rows alongside ``"schema": 1`` streams.
"""

from __future__ import annotations

import html as _html
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from .telemetry import TELEMETRY_SCHEMA_VERSION, latency_percentiles

__all__ = [
    "FabricWatcher",
    "TelemetryTail",
    "WatchModel",
    "render_frame",
    "render_html",
    "watch_command",
]

#: Heartbeats older than this many seconds mark a fabric worker as stale.
STALE_HEARTBEAT_SECONDS = 5.0


# --------------------------------------------------------------------------- #
# Telemetry mode: incremental JSONL tail + exact aggregation
# --------------------------------------------------------------------------- #


class TelemetryTail:
    """Incremental reader of a telemetry JSONL file.

    Keeps a byte offset and only consumes *complete* lines, so a writer
    flushing mid-row (or buffering with ``flush_every > 1``) never produces a
    spurious parse error — the partial tail is retried on the next poll.  A
    shrinking file (rotation by :class:`~repro.serve.telemetry.TelemetryWriter`)
    resets the cursor to the start of the fresh file.
    """

    def __init__(self, path):
        self.path = Path(path)
        self.offset = 0
        self.bad_lines = 0
        self.skipped_schema = 0

    def poll(self) -> List[dict]:
        """Return the telemetry rows appended since the previous poll."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return []
        if size < self.offset:  # rotated underneath us: start over
            self.offset = 0
        if size == self.offset:
            return []
        with open(self.path, "r", encoding="utf-8") as handle:
            handle.seek(self.offset)
            chunk = handle.read(size - self.offset)
        # only complete lines; the unterminated tail stays unconsumed
        consumed = chunk.rfind("\n") + 1
        self.offset += len(chunk[:consumed].encode("utf-8"))
        rows = []
        for line in chunk[:consumed].splitlines():
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except (ValueError, TypeError):
                self.bad_lines += 1
                continue
            if not isinstance(row, dict):
                self.bad_lines += 1
                continue
            # versionless legacy rows pass; newer-than-us schemas are skipped
            schema = row.get("schema", TELEMETRY_SCHEMA_VERSION)
            if schema > TELEMETRY_SCHEMA_VERSION:
                self.skipped_schema += 1
                continue
            rows.append(row)
        return rows


class _TenantState:
    """Running aggregates for one tenant, in row-arrival order."""

    __slots__ = (
        "name",
        "ticks",
        "latencies_ns",
        "cumulative_cost",
        "shed_total",
        "sla_violations",
        "forced_downs",
        "last_t",
        "last_demand",
        "regret",
        "prev_ticks",
    )

    def __init__(self, name: str):
        self.name = name
        self.ticks = 0
        self.latencies_ns: List[int] = []
        self.cumulative_cost = 0.0
        self.shed_total = 0.0
        self.sla_violations = 0
        self.forced_downs = 0
        self.last_t = -1
        self.last_demand = float("nan")
        self.regret: Optional[float] = None
        self.prev_ticks = 0


class WatchModel:
    """Exact re-aggregation of a telemetry stream, tenant by tenant.

    Tenants are kept in **first-seen order** — under the engine's round-robin
    multiplex that is registration order, so pooled-latency concatenation and
    cost summation happen in the same order ``summarise_sessions`` uses over
    the live session list, keeping float accumulation bit-identical.
    """

    def __init__(self):
        self.tenants: "Dict[str, _TenantState]" = {}
        self.rows_seen = 0

    def ingest(self, row: dict) -> None:
        name = str(row.get("tenant", "tenant"))
        state = self.tenants.get(name)
        if state is None:
            state = self.tenants[name] = _TenantState(name)
        self.rows_seen += 1
        state.ticks += 1
        state.last_t = int(row.get("t", state.last_t + 1))
        state.last_demand = float(row.get("demand", float("nan")))
        if "latency_ms" in row:
            # inverse of as_row's round(ns * 1e-6, 6): exact at 1 ns resolution
            state.latencies_ns.append(int(round(float(row["latency_ms"]) * 1e6)))
        if "cumulative_cost" in row:
            state.cumulative_cost = float(row["cumulative_cost"])
        # per-tick shed summed in arrival order == the session's accumulator
        state.shed_total += float(row.get("shed_demand", 0.0))
        if row.get("sla_violation"):
            state.sla_violations += 1
        state.forced_downs += int(row.get("forced_down", 0))
        if "regret" in row:
            state.regret = float(row["regret"])

    def ingest_all(self, rows) -> None:
        for row in rows:
            self.ingest(row)

    def summary(self) -> dict:
        """The ``summarise_sessions`` dict, rebuilt exactly from rows."""
        states = list(self.tenants.values())
        pooled = (
            np.concatenate(
                [np.asarray(s.latencies_ns, dtype=np.int64) for s in states]
            )
            if states
            else np.zeros(0, dtype=np.int64)
        )
        return {
            "tenants": len(states),
            "total_ticks": int(pooled.size),
            "total_cost": round(float(sum(s.cumulative_cost for s in states)), 9),
            "sla_violations": int(sum(s.sla_violations for s in states)),
            "shed_demand": round(float(sum(s.shed_total for s in states)), 9),
            "forced_downs": int(sum(s.forced_downs for s in states)),
            "latency": latency_percentiles(latencies_ns=pooled),
        }

    def tenant_rows(self, elapsed: Optional[float] = None) -> List[dict]:
        """Per-tenant display rows (tick rate needs the refresh interval)."""
        rows = []
        for state in self.tenants.values():
            ns = np.asarray(state.latencies_ns, dtype=np.int64)
            lat = latency_percentiles(latencies_ns=ns, histogram=False)
            rate = None
            if elapsed is not None and elapsed > 0:
                rate = (state.ticks - state.prev_ticks) / elapsed
            row = {
                "tenant": state.name,
                "ticks": state.ticks,
                "tick": state.last_t,
                "demand": state.last_demand,
                "cost": round(state.cumulative_cost, 9),
                "sla_violations": state.sla_violations,
                "shed_demand": round(state.shed_total, 9),
                "forced_downs": state.forced_downs,
                "latency": lat,
                "tick_rate": rate,
            }
            if state.regret is not None:
                row["regret"] = round(state.regret, 9)
            rows.append(row)
        return rows

    def mark_interval(self) -> None:
        """Snapshot per-tenant tick counts as the tick-rate baseline."""
        for state in self.tenants.values():
            state.prev_ticks = state.ticks


# --------------------------------------------------------------------------- #
# Fabric mode: heartbeat / result / checkpoint scanning
# --------------------------------------------------------------------------- #


def _read_json(path: Path) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


class FabricWatcher:
    """Reads a fabric run directory's file protocol into display rows."""

    def __init__(self, run_dir, stale_seconds: float = STALE_HEARTBEAT_SECONDS):
        self.run_dir = Path(run_dir)
        self.stale_seconds = float(stale_seconds)

    def workers(self) -> List[dict]:
        rows = []
        for directory in sorted(self.run_dir.glob("worker-*")):
            if not directory.is_dir():
                continue
            row = {"worker": directory.name, "status": "missing"}
            beat = _read_json(directory / "heartbeat.json")
            if beat is not None:
                age = time.time() - float(beat.get("time", 0.0))
                row.update(
                    incarnation=beat.get("incarnation"),
                    round=beat.get("round"),
                    heartbeat_age_s=round(age, 3),
                    ticks=beat.get("ticks", {}),
                    status="stale" if age > self.stale_seconds else "live",
                )
            result = _read_json(directory / "result.json")
            if result is not None:
                row["status"] = "done"
                row["tenants"] = {
                    name: {
                        "status": t.get("status"),
                        "breaker": (t.get("breaker") or {}).get("state"),
                        "ticks": t.get("ticks"),
                    }
                    for name, t in (result.get("tenants") or {}).items()
                }
                counters = (result.get("metrics") or {}).get("counters")
                if counters:
                    row["metric_series"] = len(counters)
            rows.append(row)
        return rows

    def checkpoints(self) -> List[dict]:
        rows = []
        for path in sorted(self.run_dir.rglob("*.ckpt.json")):
            payload = _read_json(path)
            if payload is None:
                continue
            rows.append(
                {
                    "tenant": path.name[: -len(".ckpt.json")],
                    "tick": int(payload.get("tick", 0)),
                    "cost": round(
                        float(payload.get("cum_operating", 0.0))
                        + float(payload.get("cum_switching", 0.0)),
                        9,
                    ),
                    "sla_violations": int(payload.get("sla_violations", 0)),
                    "shed_demand": round(float(payload.get("shed_total", 0.0)), 9),
                }
            )
        return rows

    def summary(self) -> dict:
        workers = self.workers()
        checkpoints = self.checkpoints()
        return {
            "schema": 1,
            "mode": "fabric",
            "run_dir": str(self.run_dir),
            "workers": workers,
            "live_workers": sum(1 for w in workers if w["status"] == "live"),
            "checkpoints": checkpoints,
            "totals": {
                "ticks": sum(c["tick"] for c in checkpoints),
                "cost": round(sum(c["cost"] for c in checkpoints), 9),
                "sla_violations": sum(c["sla_violations"] for c in checkpoints),
                "shed_demand": round(
                    sum(c["shed_demand"] for c in checkpoints), 9
                ),
            },
        }


# --------------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------------- #

_CLEAR = "\x1b[2J\x1b[H"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RED = "\x1b[31m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"
_RESET = "\x1b[0m"


def _fmt(value, width: int, precision: Optional[int] = None) -> str:
    if value is None:
        return "-".rjust(width)
    if precision is not None and isinstance(value, float):
        return f"{value:.{precision}f}".rjust(width)
    return str(value).rjust(width)


def _tenant_table(rows: List[dict], colour: bool) -> List[str]:
    head = (
        f"{'tenant':<14}{'ticks':>8}{'rate/s':>9}{'p50ms':>9}{'p95ms':>9}"
        f"{'p99ms':>9}{'cost':>14}{'regret':>11}{'sla':>6}{'shed':>10}{'down':>6}"
    )
    lines = [head, "-" * len(head)]
    for row in rows:
        lat = row["latency"]
        sla = row["sla_violations"]
        sla_txt = _fmt(sla, 6)
        if colour and sla:
            sla_txt = f"{_RED}{sla_txt}{_RESET}"
        lines.append(
            f"{row['tenant'][:13]:<14}"
            + _fmt(row["ticks"], 8)
            + _fmt(row["tick_rate"], 9, 1)
            + _fmt(lat.get("p50_ms"), 9, 4)
            + _fmt(lat.get("p95_ms"), 9, 4)
            + _fmt(lat.get("p99_ms"), 9, 4)
            + _fmt(row["cost"], 14, 4)
            + _fmt(row.get("regret"), 11, 4)
            + sla_txt
            + _fmt(row["shed_demand"], 10, 3)
            + _fmt(row["forced_downs"], 6)
        )
    return lines


def render_frame(
    model: Optional[WatchModel] = None,
    fabric: Optional[dict] = None,
    *,
    source: str = "",
    elapsed: Optional[float] = None,
    colour: bool = True,
) -> str:
    """One full dashboard frame as text (ANSI-coloured when ``colour``)."""
    bold = (lambda s: f"{_BOLD}{s}{_RESET}") if colour else (lambda s: s)
    lines = [bold(f"repro serve watch — {source}")]
    if model is not None:
        summary = model.summary()
        lat = summary["latency"]
        lines.append(
            f"tenants {summary['tenants']}  ticks {summary['total_ticks']}  "
            f"cost {summary['total_cost']:.4f}  sla {summary['sla_violations']}  "
            f"shed {summary['shed_demand']:.3f}  forced {summary['forced_downs']}"
        )
        if lat.get("ticks"):
            lines.append(
                f"latency p50 {lat['p50_ms']:.4f}ms  p95 {lat['p95_ms']:.4f}ms  "
                f"p99 {lat['p99_ms']:.4f}ms  max {lat['max_ms']:.4f}ms"
            )
        lines.append("")
        lines.extend(_tenant_table(model.tenant_rows(elapsed), colour))
    if fabric is not None:
        lines.append("")
        lines.append(bold("workers"))
        for worker in fabric["workers"]:
            status = worker["status"]
            if colour:
                tint = {"live": _GREEN, "stale": _YELLOW}.get(status, _DIM)
                status = f"{tint}{status}{_RESET}"
            age = worker.get("heartbeat_age_s")
            extras = "" if age is None else f"  beat {age:.1f}s ago"
            extras += f"  round {worker.get('round')}" if "round" in worker else ""
            lines.append(f"  {worker['worker']:<12} {status}{extras}")
            for name, t in (worker.get("tenants") or {}).items():
                lines.append(
                    f"    {name:<12} {t.get('status')}"
                    f"  breaker={t.get('breaker')}  ticks={t.get('ticks')}"
                )
        totals = fabric["totals"]
        lines.append(
            f"checkpoint totals: ticks {totals['ticks']}  cost {totals['cost']:.4f}  "
            f"sla {totals['sla_violations']}  shed {totals['shed_demand']:.3f}"
        )
    return "\n".join(lines) + "\n"


def render_html(
    model: Optional[WatchModel] = None,
    fabric: Optional[dict] = None,
    *,
    source: str = "",
) -> str:
    """A self-contained static HTML snapshot of the dashboard."""
    esc = _html.escape

    def table(headers, rows):
        cells = "".join(f"<th>{esc(str(h))}</th>" for h in headers)
        body = "".join(
            "<tr>" + "".join(f"<td>{esc(str(v))}</td>" for v in row) + "</tr>"
            for row in rows
        )
        return f"<table><thead><tr>{cells}</tr></thead><tbody>{body}</tbody></table>"

    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>repro serve watch — {esc(source)}</title>"
        "<style>body{font-family:monospace;background:#111;color:#ddd;padding:1em}"
        "table{border-collapse:collapse;margin:1em 0}"
        "td,th{border:1px solid #444;padding:2px 8px;text-align:right}"
        "th{background:#222}td:first-child,th:first-child{text-align:left}"
        "h1{font-size:1.1em}</style></head><body>"
        f"<h1>repro serve watch — {esc(source)}</h1>"
    ]
    if model is not None:
        summary = model.summary()
        lat = summary["latency"]
        parts.append(
            "<p>"
            f"tenants {summary['tenants']} · ticks {summary['total_ticks']} · "
            f"cost {summary['total_cost']} · sla {summary['sla_violations']} · "
            f"shed {summary['shed_demand']} · forced {summary['forced_downs']}"
            "</p>"
        )
        rows = [
            (
                r["tenant"],
                r["ticks"],
                r["latency"].get("p50_ms", "-"),
                r["latency"].get("p95_ms", "-"),
                r["latency"].get("p99_ms", "-"),
                r["cost"],
                r.get("regret", "-"),
                r["sla_violations"],
                r["shed_demand"],
                r["forced_downs"],
            )
            for r in model.tenant_rows()
        ]
        parts.append(
            table(
                ["tenant", "ticks", "p50ms", "p95ms", "p99ms", "cost", "regret",
                 "sla", "shed", "down"],
                rows,
            )
        )
        if lat.get("histogram"):
            hist = lat["histogram"]
            rows = [
                (f"≤{b} ns", c)
                for b, c in zip(hist["bucket_le_ns"], hist["counts"])
                if c
            ]
            overflow = hist["counts"][-1]
            if overflow:
                rows.append(("overflow", overflow))
            parts.append("<h1>latency histogram</h1>")
            parts.append(table(["bucket", "count"], rows))
    if fabric is not None:
        parts.append("<h1>workers</h1>")
        parts.append(
            table(
                ["worker", "status", "beat age (s)", "round"],
                [
                    (
                        w["worker"],
                        w["status"],
                        w.get("heartbeat_age_s", "-"),
                        w.get("round", "-"),
                    )
                    for w in fabric["workers"]
                ],
            )
        )
        if fabric["checkpoints"]:
            parts.append("<h1>checkpoints</h1>")
            parts.append(
                table(
                    ["tenant", "tick", "cost", "sla", "shed"],
                    [
                        (c["tenant"], c["tick"], c["cost"],
                         c["sla_violations"], c["shed_demand"])
                        for c in fabric["checkpoints"]
                    ],
                )
            )
    parts.append("</body></html>")
    return "".join(parts)


# --------------------------------------------------------------------------- #
# Command entry point (wired from repro.cli)
# --------------------------------------------------------------------------- #


def _compare_expected(actual: dict, expected: dict) -> List[str]:
    """Key-by-key exact comparison against an expected summary dict."""
    if "summary" in expected and isinstance(expected["summary"], dict):
        expected = expected["summary"]
    mismatches = []
    for key in (
        "tenants",
        "total_ticks",
        "total_cost",
        "sla_violations",
        "shed_demand",
        "forced_downs",
        "latency",
    ):
        if key not in expected:
            continue
        if actual.get(key) != expected[key]:
            mismatches.append(
                f"{key}: watch={actual.get(key)!r} expected={expected[key]!r}"
            )
    return mismatches


def watch_command(
    path,
    *,
    once: bool = False,
    refresh: float = 1.0,
    json_out: Optional[str] = None,
    html_out: Optional[str] = None,
    expect: Optional[str] = None,
    stale_seconds: float = STALE_HEARTBEAT_SECONDS,
    stream=None,
) -> int:
    """Run the dashboard; returns a process exit code.

    ``--json``/``--html`` write to a path (``-`` means stdout) and imply a
    single frame; ``--expect FILE`` compares the rendered summary against a
    recorded ``summarise_sessions`` payload **exactly** and fails on any
    deviation — the teeth of ``make watch-smoke``.
    """
    stream = stream if stream is not None else sys.stdout
    target = Path(path)
    if not target.exists():
        print(f"watch: no such path: {target}", file=sys.stderr)
        return 2

    fabric_mode = target.is_dir()
    watcher = FabricWatcher(target, stale_seconds=stale_seconds) if fabric_mode else None
    tail = None if fabric_mode else TelemetryTail(target)
    model = None if fabric_mode else WatchModel()
    once = once or json_out is not None or html_out is not None or expect is not None

    def refresh_model(elapsed=None):
        fabric = watcher.summary() if watcher is not None else None
        if model is not None:
            model.ingest_all(tail.poll())
        frame = render_frame(
            model,
            fabric,
            source=str(target),
            elapsed=elapsed,
            colour=stream.isatty() if hasattr(stream, "isatty") else False,
        )
        if model is not None:
            model.mark_interval()
        return fabric, frame

    if once:
        fabric, frame = refresh_model()
        summary = fabric if model is None else dict(model.summary(), schema=1)
        if json_out is not None:
            payload = json.dumps(summary, indent=2, sort_keys=True)
            if json_out == "-":
                stream.write(payload + "\n")
            else:
                Path(json_out).write_text(payload + "\n", encoding="utf-8")
        if html_out is not None:
            page = render_html(model, fabric, source=str(target))
            if html_out == "-":
                stream.write(page + "\n")
            else:
                Path(html_out).write_text(page, encoding="utf-8")
        if json_out is None and html_out is None:
            stream.write(frame)
        if expect is not None:
            if model is None:
                print("watch: --expect needs a telemetry file source", file=sys.stderr)
                return 2
            expected = _read_json(Path(expect))
            if expected is None:
                print(f"watch: cannot read --expect file {expect}", file=sys.stderr)
                return 2
            mismatches = _compare_expected(model.summary(), expected)
            if mismatches:
                for mismatch in mismatches:
                    print(f"watch: MISMATCH {mismatch}", file=sys.stderr)
                return 1
            stream.write("watch: summary matches expected exactly\n")
        return 0

    # live loop: ANSI clear + redraw until interrupted
    last = time.monotonic()
    try:
        while True:
            now = time.monotonic()
            _, frame = refresh_model(elapsed=now - last)
            last = now
            stream.write(_CLEAR + frame)
            if hasattr(stream, "flush"):
                stream.flush()
            time.sleep(max(0.05, float(refresh)))
    except KeyboardInterrupt:
        stream.write("\n")
    return 0
