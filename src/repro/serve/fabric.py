"""Fault-tolerant sharded serve fabric: supervised workers + crash recovery.

The serve engine (:mod:`repro.serve.engine`) multiplexes tenants inside one
process — one crash loses every session.  :class:`ServeFabric` is the layer
above it: tenants are declared as plain JSON-safe :class:`TenantSpec` records
(algorithm kind, declarative feed address, optional fleet address and chaos
plan), sharded across worker *processes* by their ``shard_key`` with the same
affinity-preserving assignment the sweep engine uses
(:func:`repro.exp.sharding.assign_shards` — co-keyed tenants land in one
process and share one :class:`~repro.serve.session.ServeCache`), and driven
by a :class:`~repro.serve.supervisor.Supervisor` that restarts crashed
workers under an exponential-backoff budget.

Crash recovery
--------------
Everything a worker knows is reconstructible from three deterministic
artefacts, so SIGKILL at *any* instant is survivable:

* the **control file** (desired state: which tenants this worker serves),
* each tenant's latest **checkpoint** (atomic, rotated — written every
  ``checkpoint_every`` ticks by the worker), and
* the tenant's **feed spec** (rebuilding the same spec replays the same tick
  stream).

A restarted incarnation reads the control file, rebuilds each session,
restores it from the newest intact checkpoint
(:func:`~repro.serve.session.load_checkpoint`, ``.prev`` fallback included),
rebuilds the feed and skips the ``session.ticks`` ticks already consumed —
then continues as if nothing happened.  Because sessions are bit-identically
restorable and feeds are deterministic, the recovered run's schedule, costs
and SLA counters equal an uninterrupted run's exactly; that is the
:func:`verify_crash_recovery` gate behind ``make fabric-smoke``.

Live migration rides the same machinery: :meth:`ServeFabric.migrate` removes
a tenant from its source worker's control file, waits for the released
checkpoint, and adds the tenant to the target's control file — the target
adopts it by the ordinary recovery path.

Feed faults are quarantined per tenant by a
:class:`~repro.serve.supervisor.CircuitBreaker`: consecutive
:class:`~repro.serve.feed.FeedError` ticks trip the breaker open, the tenant
cools down while its neighbours keep serving, and half-open probes retry with
a rebuilt feed (a generator that raised is dead) until the feed heals or the
breaker exhausts its budget.
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..exp.sharding import assign_shards
from .chaos import ChaosFeed
from .feed import FeedError, TraceFeed, build_feed
from .metrics import MetricsRegistry
from .session import (
    ControllerSession,
    load_checkpoint,
    previous_checkpoint_path,
    save_checkpoint,
    ServeCache,
)
from .supervisor import (
    BreakerConfig,
    CircuitBreaker,
    CONTROL_FILE,
    HEARTBEAT_FILE,
    RELEASED_DIR,
    RESULT_FILE,
    RestartPolicy,
    Supervisor,
    WorkerHandle,
    read_json,
    write_json_atomic,
)
from .telemetry import TelemetryWriter

__all__ = [
    "FabricError",
    "ServeFabric",
    "TenantSpec",
    "verify_crash_recovery",
]


class FabricError(RuntimeError):
    """The fabric could not serve its tenants (configuration or worker failure)."""


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


@dataclass(frozen=True)
class TenantSpec:
    """A tenant as pure data: everything needed to (re)build its session.

    Specs cross process boundaries and survive crashes, so every field is
    JSON-safe: the algorithm is a registry address (``{"kind", "params"}``),
    the feed a :func:`~repro.serve.feed.build_feed` spec, the optional fleet
    a scenario address (for demand-only feeds), the optional chaos plan an
    :class:`~repro.scenarios.events.EventPlan` dict.  ``shard_key`` drives
    worker placement *and* cache grouping: tenants with equal keys serve from
    one process and one :class:`~repro.serve.session.ServeCache`.
    """

    name: str
    algorithm: dict
    feed: dict
    fleet: Optional[dict] = None
    chaos: Optional[dict] = None
    degradation: str = "strict"
    history: bool = True
    track_regret: bool = False
    shard_key: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "algorithm": self.algorithm,
            "feed": self.feed,
            "fleet": self.fleet,
            "chaos": self.chaos,
            "degradation": self.degradation,
            "history": self.history,
            "track_regret": self.track_regret,
            "shard_key": self.shard_key,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TenantSpec":
        return cls(**payload)


def _materialise(spec: TenantSpec):
    """Build a tenant's live feed (+ fleet) from its declarative spec.

    Returns ``(feed, server_types)``.  Deterministic: rebuilding the same
    spec yields the same tick stream and a value-identical fleet, which is
    what crash recovery and the baseline of :func:`verify_crash_recovery`
    both rely on.
    """
    feed = build_feed(dict(spec.feed))
    server_types = feed.server_types
    if server_types is None:
        if spec.fleet is None:
            raise FeedError(
                f"tenant {spec.name!r}: feed carries no fleet — give a fleet address"
            )
        fleet_feed = build_feed({"kind": "scenario", **spec.fleet})
        server_types = fleet_feed.server_types
    if spec.chaos is not None:
        feed = ChaosFeed(feed, spec.chaos, server_types=server_types)
    return feed, server_types


def _geometry(server_types) -> tuple:
    """Structural fleet key (no cost-function identity): cache-mismatch guard."""
    return tuple(
        (st.name, int(st.count), float(st.switching_cost), float(st.capacity))
        for st in server_types
    )


# --------------------------------------------------------------------------- #
# Worker runtime (child process)
# --------------------------------------------------------------------------- #


@dataclass
class _WorkerTenant:
    """One tenant as resident in a worker: session + feed cursor + breaker."""

    spec: TenantSpec
    breaker: CircuitBreaker
    session: Optional[ControllerSession] = None
    feed: Optional[TraceFeed] = None
    iterator: Optional[object] = None
    #: Feed ticks consumed so far (== ``session.ticks``; the recovery cursor).
    consumed: int = 0
    done: bool = False
    status: str = "running"
    quarantined_rounds: int = 0
    feed_rebuilds: int = 0
    last_error: Optional[str] = None


class _WorkerRuntime:
    """The loop a fabric worker process runs (crash-only design).

    All state the parent needs is externalised through atomically-written
    files: a heartbeat every round, a rotated checkpoint per tenant every
    ``checkpoint_every`` ticks, release markers, and a final result file.
    The runtime itself holds nothing a SIGKILL could lose beyond the ticks
    since the last checkpoint — which recovery replays from the feed.
    """

    def __init__(self, worker_dir, checkpoint_dir, config: dict):
        self.dir = Path(worker_dir)
        self.checkpoint_dir = Path(checkpoint_dir)
        self.worker_id = int(config["worker"])
        self.incarnation = int(config["incarnation"])
        self.checkpoint_every = int(config.get("checkpoint_every", 8))
        self.heartbeat_every = max(1, int(config.get("heartbeat_every", 1)))
        self.die_at_round = config.get("die_at_round")
        self.breaker_config = BreakerConfig.from_dict(config.get("breaker"))
        self.tensor_budget_bytes = config.get("tensor_budget_bytes")
        self.ledger_budget = config.get("ledger_budget")
        self.tenants: "OrderedDict[str, _WorkerTenant]" = OrderedDict()
        self._caches: Dict = {}
        # one registry per worker incarnation; every cache/session lands its
        # series here and the snapshot ships home in the result file
        self.metrics = MetricsRegistry()
        self._epoch = None
        self._round = 0
        telemetry_path = config.get("telemetry")
        self.telemetry = TelemetryWriter(
            None
            if not telemetry_path
            else self.dir / f"telemetry-{self.incarnation}.jsonl"
        )

    # ------------------------------------------------------------------- loop
    def run(self) -> None:
        self._sync_control()
        self._write_heartbeat()
        while True:
            if self.die_at_round is not None and self._round >= int(self.die_at_round):
                # deterministic fault injection for the crash-recovery gate:
                # die *between* rounds, exactly where a real crash would land
                os.kill(os.getpid(), signal.SIGKILL)
            self._sync_control()
            progressed = False
            for tenant in list(self.tenants.values()):
                if not tenant.done:
                    progressed = self._step(tenant) or progressed
            self._round += 1
            if self._round % self.heartbeat_every == 0 or not progressed:
                self._write_heartbeat()
            if all(t.done for t in self.tenants.values()):
                self._finish()
                return
            if not progressed:
                # every live tenant is quarantined: idle briefly instead of
                # spinning the breaker cooldown rounds at CPU speed
                time.sleep(0.002)

    # ------------------------------------------------------- desired-state sync
    def _sync_control(self) -> None:
        control = read_json(self.dir / CONTROL_FILE)
        if not control or control.get("epoch") == self._epoch:
            return
        desired = control.get("tenants", {})
        for name in [n for n in self.tenants if n not in desired]:
            self._release(name)
        for name, payload in desired.items():
            if name not in self.tenants:
                self._adopt(TenantSpec.from_dict(payload))
        self._epoch = control.get("epoch")

    def _adopt(self, spec: TenantSpec) -> None:
        """Take ownership of a tenant: build, restore, position the feed.

        This single path serves first assignment, crash recovery and
        migration arrival alike — the only difference is whether a checkpoint
        exists to restore from.
        """
        tenant = _WorkerTenant(spec=spec, breaker=CircuitBreaker(self.breaker_config))
        self.tenants[spec.name] = tenant
        try:
            feed, server_types = _materialise(spec)
        except Exception as exc:  # noqa: BLE001 — a broken spec must not kill the worker
            tenant.done = True
            tenant.status = "failed"
            tenant.last_error = str(exc)
            return
        cache = self._cache_for(spec, server_types)
        session = ControllerSession(
            spec.algorithm,
            cache=cache,
            track_regret=spec.track_regret,
            degradation=spec.degradation,
            history=spec.history,
            name=spec.name,
        )
        path = self._checkpoint_path(spec.name)
        if path.exists() or previous_checkpoint_path(path).exists():
            session.restore(load_checkpoint(path))
        tenant.session = session
        tenant.consumed = session.ticks
        tenant.feed = feed

    def _cache_for(self, spec: TenantSpec, server_types) -> ServeCache:
        key = spec.shard_key or ("tenant", spec.name)
        cache = self._caches.get(key)
        if cache is not None and _geometry(cache.server_types) != _geometry(server_types):
            # a mis-grouped tenant gets a private cache instead of wrong costs
            key = ("tenant", spec.name)
            cache = self._caches.get(key)
        if cache is None:
            cache = ServeCache(
                server_types,
                tensor_budget_bytes=self.tensor_budget_bytes,
                ledger_budget=self.ledger_budget,
                metrics=self.metrics,
                metrics_label=f"cache{len(self._caches)}",
            )
            self._caches[key] = cache
        return cache

    def _release(self, name: str) -> None:
        """Hand a tenant back: checkpoint now, drop it, leave a marker."""
        tenant = self.tenants.pop(name)
        if tenant.session is not None:
            self._checkpoint(tenant)
        write_json_atomic(
            self.dir / RELEASED_DIR / f"{name}.json",
            {
                "tenant": name,
                "tick": 0 if tenant.session is None else tenant.session.ticks,
                "status": tenant.status,
            },
        )

    # ------------------------------------------------------------------- ticks
    def _step(self, tenant: _WorkerTenant) -> bool:
        """Advance one tenant by one tick; returns whether it progressed."""
        if not tenant.breaker.allow(self._round):
            tenant.quarantined_rounds += 1
            return False
        try:
            if tenant.iterator is None:
                tenant.iterator = self._open_iterator(tenant)
            tick = next(tenant.iterator)
        except StopIteration:
            self._complete(tenant)
            return True
        except (FeedError, OSError) as exc:
            # OSError covers transient source problems (file mid-rotation,
            # NFS hiccup): route them through the breaker like any FeedError
            # so the tenant quarantines and retries instead of the worker
            # crash-looping on a bad stream.
            self._feed_failure(tenant, exc)
            return False
        tenant.breaker.record_success()
        state = tenant.session.observe(tick.demand, cost_row=tick.cost_row, counts=tick.counts)
        tenant.consumed += 1
        self.telemetry.write(state.as_row(), tenant=tenant.spec.name)
        if self.checkpoint_every and tenant.session.ticks % self.checkpoint_every == 0:
            self._checkpoint(tenant)
        return True

    def _open_iterator(self, tenant: _WorkerTenant):
        """(Re)build the tenant's feed and skip the ticks already consumed.

        A generator that raised :class:`FeedError` is dead, so every breaker
        retry lands here: fresh feed, fast-forwarded past ``consumed`` ticks
        — deterministic feeds make the skip exact.
        """
        feed = tenant.feed
        tenant.feed = None
        if feed is None:
            feed, _ = _materialise(tenant.spec)
            tenant.feed_rebuilds += 1
        iterator = feed.play(None)
        for _ in range(tenant.consumed):
            try:
                next(iterator)
            except StopIteration:
                # the feed shrank below the restore point: treat as drained
                return iter(())
        return iterator

    def _feed_failure(self, tenant: _WorkerTenant, exc: Exception) -> None:
        tenant.breaker.record_failure(self._round)
        tenant.iterator = None
        tenant.last_error = str(exc)
        if tenant.breaker.exhausted:
            # the feed failed through every cooldown: abandon this tenant
            # (state preserved for post-mortem), keep serving the others
            tenant.done = True
            tenant.status = "failed"
            if tenant.session is not None:
                self._checkpoint(tenant)

    def _complete(self, tenant: _WorkerTenant) -> None:
        tenant.session.finish()
        tenant.done = True
        tenant.status = "completed"
        self._checkpoint(tenant)

    # --------------------------------------------------------------- artefacts
    def _checkpoint_path(self, name: str) -> Path:
        return self.checkpoint_dir / f"{name}.ckpt.json"

    def _checkpoint(self, tenant: _WorkerTenant) -> None:
        save_checkpoint(
            self._checkpoint_path(tenant.spec.name), tenant.session.checkpoint()
        )

    def _write_heartbeat(self) -> None:
        write_json_atomic(
            self.dir / HEARTBEAT_FILE,
            {
                "schema": 1,
                "worker": self.worker_id,
                "incarnation": self.incarnation,
                "round": self._round,
                "pid": os.getpid(),
                "time": time.time(),
                "ticks": {
                    name: 0 if t.session is None else t.session.ticks
                    for name, t in self.tenants.items()
                },
            },
        )

    def _finish(self) -> None:
        rows = {}
        for name, tenant in self.tenants.items():
            row = {
                "status": tenant.status,
                "consumed": tenant.consumed,
                "breaker": tenant.breaker.counters(),
                "quarantined_rounds": tenant.quarantined_rounds,
                "feed_rebuilds": tenant.feed_rebuilds,
            }
            if tenant.last_error is not None:
                row["last_error"] = tenant.last_error
            if tenant.session is not None:
                row.update(tenant.session.summary())
            rows[name] = row
        self._write_heartbeat()
        write_json_atomic(
            self.dir / RESULT_FILE,
            {
                "schema": 1,
                "worker": self.worker_id,
                "incarnation": self.incarnation,
                "rounds": self._round,
                "tenants": rows,
                "caches": [c.counters() for c in self._caches.values()],
                "metrics": self.metrics.snapshot(),
            },
        )
        self.telemetry.close()


def _fabric_worker_main(worker_dir: str, checkpoint_dir: str, config: dict) -> None:
    """Module-level process entrypoint (picklable under any start method)."""
    try:
        _WorkerRuntime(worker_dir, checkpoint_dir, config).run()
    except Exception:  # noqa: BLE001 — exit code is the crash signal upward
        traceback.print_exc()
        raise SystemExit(1)


# --------------------------------------------------------------------------- #
# The fabric (parent process)
# --------------------------------------------------------------------------- #


class ServeFabric:
    """Shards tenants across supervised worker processes; survives crashes.

    Usage::

        fabric = ServeFabric(workers=2, checkpoint_every=4)
        fabric.add_tenant("a", algorithm="A",
                          feed={"scenario": "diurnal-cpu-gpu", "seed": 0})
        fabric.add_tenant("b", algorithm="lcp",
                          feed={"scenario": "diurnal-cpu-gpu", "seed": 1})
        report = fabric.run()

    ``run(kill={0: 12})`` injects a deterministic SIGKILL into worker 0 at
    round 12 (first incarnation only) — the fault the crash-recovery gate
    drives.  Tenants sharing a ``group`` (and hence a ``shard_key``) are
    co-located on one worker and share one
    :class:`~repro.serve.session.ServeCache`; by default every distinct feed
    address is its own group, so sharing is opt-in and always value-correct.
    """

    def __init__(
        self,
        workers: int = 2,
        run_dir=None,
        *,
        checkpoint_every: int = 8,
        heartbeat_every: int = 1,
        restart_policy: Optional[RestartPolicy] = None,
        breaker: Optional[BreakerConfig] = None,
        heartbeat_timeout: float = 10.0,
        poll_interval: float = 0.02,
        tensor_budget_bytes: Optional[int] = None,
        ledger_budget: Optional[int] = None,
        worker_telemetry: bool = False,
    ):
        if int(workers) < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.n_workers = int(workers)
        self.run_dir = None if run_dir is None else Path(run_dir)
        self.checkpoint_every = int(checkpoint_every)
        self.heartbeat_every = int(heartbeat_every)
        self.restart_policy = restart_policy or RestartPolicy()
        self.breaker = breaker or BreakerConfig()
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.poll_interval = float(poll_interval)
        self.tensor_budget_bytes = tensor_budget_bytes
        self.ledger_budget = ledger_budget
        self.worker_telemetry = bool(worker_telemetry)
        self._tenants: "OrderedDict[str, TenantSpec]" = OrderedDict()
        self._migrations: List[dict] = []
        # populated by run()
        self._handles: List[WorkerHandle] = []
        self._assignment: Dict[str, int] = {}
        self._epochs: Dict[int, int] = {}

    # ---------------------------------------------------------------- tenants
    def add_tenant(
        self,
        name: str,
        algorithm: Union[str, dict] = "A",
        feed: Optional[dict] = None,
        *,
        fleet: Optional[Union[str, dict]] = None,
        chaos=None,
        degradation: str = "strict",
        history: bool = True,
        track_regret: bool = False,
        group: Optional[str] = None,
    ) -> TenantSpec:
        """Declare a tenant (pure data; nothing is materialised yet).

        ``feed`` is a declarative :func:`~repro.serve.feed.build_feed` spec —
        live :class:`TraceFeed` objects are rejected because tenants must be
        rebuildable in a worker process after a crash.  ``fleet`` (a scenario
        address, e.g. ``"diurnal-cpu-gpu"`` or ``{"scenario": ..., "seed": 0}``)
        is required for demand-only feeds.  ``group`` opts tenants into
        sharing one worker and one dispatch cache; grouped tenants should
        share a fleet address (a structural mismatch falls back to a private
        cache, but value-level cost differences are the caller's to avoid).
        """
        name = str(name)
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} is already registered")
        if isinstance(feed, TraceFeed):
            raise TypeError(
                "fabric tenants need a declarative feed spec (a dict), not a live "
                "TraceFeed — workers rebuild feeds across process boundaries"
            )
        if feed is None:
            raise ValueError("feed spec is required")
        if isinstance(algorithm, str):
            algorithm = {"kind": algorithm, "params": {}}
        elif isinstance(algorithm, dict):
            algorithm = {
                "kind": algorithm["kind"],
                "params": dict(algorithm.get("params", {})),
            }
        else:
            raise TypeError(
                "fabric tenants need a declarative algorithm (kind or "
                "{'kind', 'params'} dict), not a live OnlineAlgorithm"
            )
        if isinstance(fleet, str):
            fleet = {"scenario": fleet}
        if chaos is not None and not isinstance(chaos, (dict, list)):
            chaos = chaos.to_dict()  # an EventPlan
        feed = dict(feed)
        shard_key = group or _canonical(fleet if fleet is not None else feed)
        spec = TenantSpec(
            name=name,
            algorithm=algorithm,
            feed=feed,
            fleet=fleet,
            chaos=None if chaos is None else dict(chaos) if isinstance(chaos, dict) else {"events": list(chaos)},
            degradation=degradation,
            history=bool(history),
            track_regret=bool(track_regret),
            shard_key=str(shard_key),
        )
        self._tenants[name] = spec
        return spec

    @property
    def tenants(self) -> Dict[str, TenantSpec]:
        return dict(self._tenants)

    def migrate(self, tenant: str, worker: int, after_round: Optional[int] = None) -> dict:
        """Queue a checkpoint-based live migration for the next :meth:`run`.

        At ``after_round`` (immediately when ``None``) the tenant is removed
        from its source worker's control file; once the source has
        checkpointed and released it — or has crashed, in which case its last
        periodic checkpoint stands in — the tenant is added to ``worker``'s
        control file and adopted there through the ordinary recovery path.
        """
        if tenant not in self._tenants:
            raise KeyError(f"unknown tenant {tenant!r}")
        if not 0 <= int(worker) < self.n_workers:
            raise ValueError(f"worker must be in [0, {self.n_workers}), got {worker}")
        migration = {
            "tenant": str(tenant),
            "target": int(worker),
            "after_round": None if after_round is None else int(after_round),
            "state": "pending",
        }
        self._migrations.append(migration)
        return migration

    # -------------------------------------------------------------------- run
    def run(
        self,
        *,
        kill: Optional[Dict[int, int]] = None,
        timeout: float = 120.0,
        telemetry=None,
        raise_on_failure: bool = True,
    ) -> dict:
        """Serve every tenant to completion; returns the fabric report.

        ``kill`` maps worker id → round at which that worker's *first*
        incarnation SIGKILLs itself (deterministic crash injection).
        ``telemetry`` is an optional JSONL path receiving fabric lifecycle
        events (worker starts/crashes/recoveries, migrations) through a
        :class:`~repro.serve.telemetry.TelemetryWriter`.  With
        ``raise_on_failure`` (default) a failed worker or unfinished tenant
        raises :class:`FabricError`; pass ``False`` to inspect the report of
        a degraded run instead.
        """
        if not self._tenants:
            raise FabricError("no tenants registered")
        run_dir = self.run_dir or Path(tempfile.mkdtemp(prefix="serve-fabric-"))
        run_dir.mkdir(parents=True, exist_ok=True)
        checkpoint_dir = run_dir / "checkpoints"
        checkpoint_dir.mkdir(exist_ok=True)
        specs = list(self._tenants.values())
        shards = assign_shards([s.shard_key for s in specs], self.n_workers)
        self._assignment = {spec.name: shard for spec, shard in zip(specs, shards)}
        self._handles = []
        self._epochs = {}
        for worker_id in range(self.n_workers):
            directory = run_dir / f"worker-{worker_id}"
            (directory / RELEASED_DIR).mkdir(parents=True, exist_ok=True)
            self._handles.append(WorkerHandle(id=worker_id, directory=directory))
            self._epochs[worker_id] = 0
            self._write_control(worker_id)
        kill = {int(k): int(v) for k, v in (kill or {}).items()}
        context = _mp_context()

        def spawn(worker_id: int, incarnation: int):
            config = {
                "worker": worker_id,
                "incarnation": incarnation,
                "checkpoint_every": self.checkpoint_every,
                "heartbeat_every": self.heartbeat_every,
                "breaker": self.breaker.to_dict(),
                "tensor_budget_bytes": self.tensor_budget_bytes,
                "ledger_budget": self.ledger_budget,
                "telemetry": self.worker_telemetry,
                "die_at_round": kill.get(worker_id) if incarnation == 0 else None,
            }
            process = context.Process(
                target=_fabric_worker_main,
                args=(str(self._handles[worker_id].directory), str(checkpoint_dir), config),
                daemon=True,
            )
            process.start()
            return process

        writer = TelemetryWriter(telemetry)
        supervisor = Supervisor(
            self._handles,
            spawn,
            policy=self.restart_policy,
            heartbeat_timeout=self.heartbeat_timeout,
            poll_interval=self.poll_interval,
            event=writer.write,
        )
        pending = [dict(m) for m in self._migrations]
        started = time.perf_counter()
        try:
            supervisor.run(
                on_poll=lambda sup: self._drive_migrations(sup, pending, checkpoint_dir),
                timeout=timeout,
            )
        finally:
            writer.close()
        report = self._collect(
            supervisor, pending, checkpoint_dir, run_dir, time.perf_counter() - started
        )
        if raise_on_failure:
            failed_workers = [w for w, row in report["workers"].items() if row["status"] == "failed"]
            unfinished = [
                name for name, row in report["tenants"].items() if row["status"] != "completed"
            ]
            if failed_workers or unfinished:
                raise FabricError(
                    f"fabric run degraded: failed workers {failed_workers}, "
                    f"unfinished tenants {unfinished} (see report at {run_dir})"
                )
        return report

    def _write_control(self, worker_id: int) -> None:
        self._epochs[worker_id] += 1
        tenants = {
            name: spec.to_dict()
            for name, spec in self._tenants.items()
            if self._assignment.get(name) == worker_id
        }
        write_json_atomic(
            self._handles[worker_id].control_path,
            {"epoch": self._epochs[worker_id], "tenants": tenants},
        )

    # -------------------------------------------------------------- migrations
    def _drive_migrations(self, supervisor: Supervisor, pending: List[dict], checkpoint_dir: Path) -> None:
        """Advance queued migrations (runs once per supervisor poll).

        pending → (threshold reached) remove from source control → releasing
        → (released marker, or the source crashed/finished: its newest
        checkpoint stands in) add to target control → done.
        """
        for migration in pending:
            state = migration.get("state")
            tenant = migration["tenant"]
            target = migration["target"]
            if state == "pending":
                source = self._assignment.get(tenant)
                if source == target:
                    migration["state"] = "done"
                    continue
                threshold = migration.get("after_round")
                source_handle = supervisor.workers[source]
                last_round = (source_handle.last_heartbeat or {}).get("round", 0)
                if threshold is not None and last_round < threshold:
                    continue
                migration["source"] = source
                migration["source_incarnation"] = source_handle.incarnation
                self._assignment[tenant] = -1  # in flight: owned by nobody
                self._write_control(source)
                migration["state"] = "releasing"
                supervisor.event("migration_release", source, tenant=tenant, target=target)
            elif state == "releasing":
                source_handle = supervisor.workers[migration["source"]]
                marker = source_handle.released_marker(tenant)
                released = marker.exists()
                if not released:
                    # the source died or finished before acting on the release:
                    # its last periodic checkpoint is the migration payload
                    crashed = source_handle.incarnation != migration["source_incarnation"]
                    finished = source_handle.status in ("done", "failed")
                    if not (crashed or finished):
                        continue
                target_handle = supervisor.workers[target]
                if target_handle.status == "failed":
                    migration["state"] = "failed"
                    supervisor.event("migration_failed", target, tenant=tenant,
                                     reason="target worker failed")
                    continue
                self._assignment[tenant] = target
                self._write_control(target)
                if target_handle.status == "done":
                    supervisor.revive(target)
                migration["state"] = "done"
                supervisor.event("migration_complete", target, tenant=tenant,
                                 source=migration["source"])

    # ----------------------------------------------------------------- report
    def _collect(
        self,
        supervisor: Supervisor,
        migrations: List[dict],
        checkpoint_dir: Path,
        run_dir: Path,
        wall_seconds: float,
    ) -> dict:
        workers = {}
        results = {}
        for handle in self._handles:
            row = handle.liveness()
            result = read_json(handle.result_path)
            if result is not None:
                results[handle.id] = result
                row["rounds"] = result.get("rounds")
                row["caches"] = result.get("caches")
            workers[str(handle.id)] = row
        tenants = {}
        totals = {"ticks": 0, "cost": 0.0, "sla_violations": 0, "shed_demand": 0.0}
        for name, spec in self._tenants.items():
            worker_id = self._assignment.get(name)
            result_row = (results.get(worker_id, {}).get("tenants", {})).get(name, {})
            status = result_row.get("status")
            if status is None:
                handle_status = supervisor.workers[worker_id].status if worker_id in supervisor.workers else None
                status = "abandoned" if handle_status == "failed" else "unknown"
            row = {"worker": worker_id, "status": status}
            for key in ("breaker", "quarantined_rounds", "feed_rebuilds", "last_error", "latency"):
                if key in result_row:
                    row[key] = result_row[key]
            path = checkpoint_dir / f"{name}.ckpt.json"
            if path.exists() or previous_checkpoint_path(path).exists():
                payload = load_checkpoint(path)
                row["ticks"] = int(payload["tick"])
                row["cost"] = float(payload["cum_operating"]) + float(payload["cum_switching"])
                row["sla_violations"] = int(payload.get("sla_violations", 0))
                row["shed_demand"] = float(payload.get("shed_total", 0.0))
                row["forced_downs"] = int(payload.get("forced_downs", 0))
                row["checkpoint"] = str(path)
                totals["ticks"] += row["ticks"]
                totals["cost"] += row["cost"]
                totals["sla_violations"] += row["sla_violations"]
                totals["shed_demand"] += row["shed_demand"]
            tenants[name] = row
        totals["cost"] = round(totals["cost"], 9)
        totals["shed_demand"] = round(totals["shed_demand"], 9)
        totals["restarts"] = sum(h.restarts for h in self._handles)
        totals["migrations_completed"] = sum(1 for m in migrations if m.get("state") == "done")
        recovery = [v for h in self._handles for v in h.recovery_latencies]
        # fabric-wide counter rollup: sum every worker registry's counters
        # series-by-series (labels keep worker-local cache/tenant attribution)
        merged: Dict[str, float] = {}
        for result in results.values():
            for series, value in (result.get("metrics") or {}).get("counters", {}).items():
                merged[series] = merged.get(series, 0) + value
        return {
            "metrics": {"schema": 1, "counters": dict(sorted(merged.items()))},
            "workers": workers,
            "tenants": tenants,
            "migrations": migrations,
            "events": supervisor.events,
            "totals": totals,
            "recovery_latency_s": [round(v, 6) for v in recovery],
            "wall_seconds": round(wall_seconds, 6),
            "run_dir": str(run_dir),
            "checkpoint_dir": str(checkpoint_dir),
        }


def _mp_context():
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX fallback
        return multiprocessing.get_context("spawn")


# --------------------------------------------------------------------------- #
# The crash-recovery gate
# --------------------------------------------------------------------------- #


def verify_crash_recovery(
    scenario: str = "diurnal-cpu-gpu",
    *,
    n_tenants: int = 4,
    algorithm: str = "A",
    workers: int = 2,
    kill_worker: int = 0,
    kill_round: Optional[int] = None,
    seed: int = 0,
    scenario_params: Optional[dict] = None,
    chaos=None,
    degradation: str = "strict",
    checkpoint_every: int = 4,
    tolerance: float = 1e-9,
    run_dir=None,
    fabric: Optional[ServeFabric] = None,
) -> dict:
    """The fabric gate: SIGKILL a worker mid-stream, demand a perfect recovery.

    Runs every tenant twice: once in-process, uninterrupted (the baseline),
    and once through a :class:`ServeFabric` where ``kill_worker`` is
    SIGKILLed at ``kill_round`` (default: half the stream) and recovered from
    its periodic checkpoints.  Asserts that

    * the killed worker actually died and restarted (a gate that never
      injected its fault verifies nothing),
    * every tenant's recovered schedule is **bit-identical** to the baseline,
    * cumulative costs agree within ``tolerance`` (1e-9), and
    * the SLA counters (violations, shed demand, forced downs) agree exactly
      — including under an active chaos plan.

    Pass a pre-built ``fabric`` (with tenants registered) to gate a custom
    topology; otherwise ``n_tenants`` scenario tenants with consecutive seeds
    are built.  Returns a JSON-safe verification report; raises
    ``AssertionError`` on any mismatch.
    """
    if fabric is None:
        fabric = ServeFabric(
            workers=workers, run_dir=run_dir, checkpoint_every=checkpoint_every
        )
        for i in range(int(n_tenants)):
            feed = {"kind": "scenario", "scenario": scenario, "seed": seed + i}
            if scenario_params:
                feed["params"] = dict(scenario_params)
            fabric.add_tenant(
                f"tenant-{i}",
                algorithm=algorithm,
                feed=feed,
                chaos=chaos,
                degradation=degradation,
            )

    # ------------------------------------------------- uninterrupted baseline
    baseline = {}
    min_ticks = None
    for spec in fabric.tenants.values():
        feed, server_types = _materialise(spec)
        session = ControllerSession(
            spec.algorithm,
            server_types,
            track_regret=spec.track_regret,
            degradation=spec.degradation,
            history=spec.history,
            name=spec.name,
        )
        for tick in feed.play(None):
            session.observe(tick.demand, cost_row=tick.cost_row, counts=tick.counts)
        session.finish()
        baseline[spec.name] = {
            "ticks": session.ticks,
            "configs": (
                [[int(v) for v in c] for c in session.schedule.x]
                if spec.history
                else None
            ),
            "cost": session.cumulative_cost,
            "sla_violations": session.sla_violations,
            "shed_demand": session.shed_demand_total,
            "forced_downs": session.forced_downs,
        }
        min_ticks = session.ticks if min_ticks is None else min(min_ticks, session.ticks)

    if kill_round is None:
        kill_round = max(1, (min_ticks or 2) // 2)

    # ------------------------------------------------ fabric run with a crash
    report = fabric.run(kill={int(kill_worker): int(kill_round)}, raise_on_failure=False)
    killed = report["workers"][str(int(kill_worker))]
    assert killed["restarts"] >= 1, (
        f"worker {kill_worker} never restarted (kill at round {kill_round} did not "
        f"fire — the gate verified nothing): {killed}"
    )

    max_cost_delta = 0.0
    checkpoint_dir = Path(report["checkpoint_dir"])
    for name, expected in baseline.items():
        row = report["tenants"][name]
        assert row["status"] == "completed", f"tenant {name} ended {row['status']!r}: {row}"
        payload = load_checkpoint(checkpoint_dir / f"{name}.ckpt.json")
        assert int(payload["tick"]) == expected["ticks"], (
            f"tenant {name}: recovered run stopped at tick {payload['tick']} "
            f"(baseline ran {expected['ticks']})"
        )
        if expected["configs"] is not None:
            recovered = [[int(v) for v in c] for c in payload["configs"]]
            assert recovered == expected["configs"], (
                f"tenant {name}: recovered schedule diverged from the uninterrupted "
                f"baseline (first mismatch at tick "
                f"{next(t for t, (a, b) in enumerate(zip(recovered, expected['configs'])) if a != b)})"
            )
        cost = float(payload["cum_operating"]) + float(payload["cum_switching"])
        delta = abs(cost - expected["cost"])
        max_cost_delta = max(max_cost_delta, delta)
        assert delta <= tolerance, (
            f"tenant {name}: recovered cost {cost!r} differs from baseline "
            f"{expected['cost']!r} by {delta:g} (> {tolerance:g})"
        )
        for counter, key in (
            ("sla_violations", "sla_violations"),
            ("shed_demand", "shed_total"),
            ("forced_downs", "forced_downs"),
        ):
            got = payload.get(key, 0)
            assert got == expected[counter], (
                f"tenant {name}: recovered {counter} {got!r} != baseline "
                f"{expected[counter]!r}"
            )

    return {
        "verified": True,
        "tenants": len(baseline),
        "workers": fabric.n_workers,
        "kill": {"worker": int(kill_worker), "round": int(kill_round)},
        "restarts": report["totals"]["restarts"],
        "recovery_latency_s": report["recovery_latency_s"],
        "max_cost_delta": max_cost_delta,
        "ticks": report["totals"]["ticks"],
        "sla_violations": report["totals"]["sla_violations"],
        "wall_seconds": report["wall_seconds"],
        "run_dir": report["run_dir"],
    }
