"""Zero-dependency tick-phase span tracer for the serve hot path.

Answers "where does a slow tick spend its time": a sampled tick is broken
into ns-resolution spans — ``feed_wait`` → ``prepare`` → ``decide[table]`` /
``decide[warm]`` / ``decide[cold]`` → ``commit`` → ``telemetry`` — recorded
as raw ``perf_counter_ns`` intervals and dumped as Chrome ``trace_event``
JSON (load the file in ``chrome://tracing`` / Perfetto).

Sampling: ``trace_every=N`` records every Nth tick; the untraced path costs
one ``is not None`` branch in :meth:`ControllerSession.observe
<repro.serve.session.ControllerSession.observe>`, which is what keeps the
latency smoke's floor-p99 gate honest with tracing off (PERFORMANCE.md
documents the overhead methodology; the smoke also gates the *traced* floor
at ``trace_every=1`` under 2× budget).

The ``decide`` span is attributed to the dispatch tier that actually served
the tick — ``table`` (a fast-map gather), ``warm`` (a warm-started
bisection) or ``cold`` (a cold solve) — inferred from the cache counter
deltas across the phase, so the span names agree with the counters the
``repro bench --counters`` gate pins.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional

__all__ = ["TickTracer", "TraceSpan"]


class TraceSpan:
    """One recorded span: raw ns start/duration plus identity fields."""

    __slots__ = ("name", "tenant", "tick", "start_ns", "duration_ns")

    def __init__(self, name: str, tenant: str, tick: int, start_ns: int, duration_ns: int):
        self.name = name
        self.tenant = tenant
        self.tick = tick
        self.start_ns = start_ns
        self.duration_ns = duration_ns

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "tenant": self.tenant,
            "tick": self.tick,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
        }


class TickTracer:
    """Collects :class:`TraceSpan` records under a ``trace_every`` knob.

    One tracer serves any number of sessions (spans carry the tenant name);
    the sampling cursor advances once per tick via :meth:`should_sample`.
    :meth:`peek` reads the cursor without consuming it — callers that need
    to bracket work *before* the session's own phases (the CLI replay loop
    metering ``feed_wait``) peek first, then let the session consume.
    """

    def __init__(self, trace_every: int = 1, max_spans: int = 200_000):
        if int(trace_every) < 1:
            raise ValueError(f"trace_every must be >= 1, got {trace_every}")
        self.trace_every = int(trace_every)
        self.max_spans = int(max_spans)
        self.spans: List[TraceSpan] = []
        self.sampled_ticks = 0
        self.dropped_spans = 0
        self._seen = 0

    def peek(self) -> bool:
        """Whether the *next* :meth:`should_sample` call will sample."""
        return self._seen % self.trace_every == 0

    def should_sample(self) -> bool:
        """Advance the sampling cursor; True on every ``trace_every``-th tick."""
        sampled = self._seen % self.trace_every == 0
        self._seen += 1
        if sampled:
            self.sampled_ticks += 1
        return sampled

    def record(self, name: str, tenant: str, tick: int, start_ns: int, end_ns: int) -> None:
        """Append one span (bounded: past ``max_spans``, spans are dropped)."""
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return
        self.spans.append(TraceSpan(name, tenant, tick, start_ns, end_ns - start_ns))

    # -------------------------------------------------------------- exposition
    def summary(self) -> dict:
        """Per-phase totals (span count + total ns), JSON-safe."""
        phases: dict = {}
        for span in self.spans:
            row = phases.get(span.name)
            if row is None:
                row = phases[span.name] = {"spans": 0, "total_ns": 0}
            row["spans"] += 1
            row["total_ns"] += span.duration_ns
        return {
            "trace_every": self.trace_every,
            "sampled_ticks": self.sampled_ticks,
            "spans": len(self.spans),
            "dropped_spans": self.dropped_spans,
            "phases": phases,
        }

    def to_chrome_trace(self) -> dict:
        """The spans as a Chrome ``trace_event`` JSON object.

        Complete ("X") events on one process, one thread id per tenant;
        timestamps are microseconds relative to the first recorded span
        (the ``trace_event`` format's native unit).
        """
        if not self.spans:
            return {"traceEvents": [], "displayTimeUnit": "ns"}
        origin = min(span.start_ns for span in self.spans)
        tids = {}
        events = []
        for span in self.spans:
            tid = tids.get(span.tenant)
            if tid is None:
                tid = tids[span.tenant] = len(tids) + 1
            events.append(
                {
                    "name": span.name,
                    "cat": "tick",
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": (span.start_ns - origin) / 1e3,
                    "dur": span.duration_ns / 1e3,
                    "args": {"tenant": span.tenant, "tick": span.tick},
                }
            )
        events.extend(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": f"tenant {tenant}"},
            }
            for tenant, tid in tids.items()
        )
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    def dump(self, path) -> Optional[Path]:
        """Write the Chrome ``trace_event`` JSON to ``path`` (None: no-op)."""
        if path is None:
            return None
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle)
        return path
