"""Quantised solution tables: demand-level x configuration dispatch lookups.

Streams produced by ``quantise_trace``-style binning draw their demands from a
small alphabet (the serve bench uses 12 levels).  Every dispatch quantity a
steady-state tick needs — the operating-cost tensor over a state grid, the
per-configuration cost and loads of the chosen config — is then a pure
function of ``(demand level, configuration set, cost row)``, so it can be
precomputed once per ``(fleet signature, cost row)`` pair and served as a
table gather with zero dual bisections on the tick path.

A :class:`SolutionTable` is deliberately dumb storage: whoever builds it
(:meth:`ServeCache.prewarm <repro.serve.session.ServeCache.prewarm>` for the
serve layer, :meth:`SlotContext.solution_table
<repro.online.base.SlotContext.solution_table>` for the sweep engine) must
produce the rows **through the exact code path the cold tick would take**, so
a table hit is bit-identical to a table miss by construction — the serve
replay gates compare schedules with ``np.array_equal``, not a tolerance.
Demand levels are matched exactly (binned streams reproduce the same float64
values); an unknown demand simply misses and falls through to the solver.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["SolutionTable"]


class SolutionTable:
    """Immutable demand-level x configuration dispatch table.

    Parameters
    ----------
    levels:
        The demand alphabet, shape ``(L,)``.  Duplicates are collapsed (last
        entry wins); order does not matter — lookups go through an exact-match
        dict, not interpolation.
    configs:
        The configuration set the rows were solved over, shape ``(n, d)``.
    costs:
        Operating costs ``g(level, config)``, shape ``(L, n)``, ``inf`` for
        infeasible entries.
    loads:
        Optimal per-type volumes, shape ``(L, n, d)``.
    """

    __slots__ = ("levels", "configs", "costs", "loads", "_index")

    def __init__(
        self,
        levels: Sequence[float],
        configs: np.ndarray,
        costs: np.ndarray,
        loads: np.ndarray,
    ):
        levels_arr = np.asarray(levels, dtype=float)
        configs = np.asarray(configs)
        costs = np.asarray(costs, dtype=float)
        loads = np.asarray(loads, dtype=float)
        L = len(levels_arr)
        if costs.shape != (L, len(configs)):
            raise ValueError(
                f"costs must have shape ({L}, {len(configs)}), got {costs.shape}"
            )
        if loads.shape != (L, len(configs), configs.shape[1]):
            raise ValueError(
                f"loads must have shape ({L}, {len(configs)}, {configs.shape[1]}), "
                f"got {loads.shape}"
            )
        self.levels = levels_arr
        self.configs = configs
        self.costs = costs
        self.loads = loads
        for arr in (self.levels, self.costs, self.loads):
            arr.setflags(write=False)
        self._index: Dict[float, int] = {float(v): i for i, v in enumerate(levels_arr)}

    # ------------------------------------------------------------------ reads
    def __len__(self) -> int:
        return len(self.levels)

    def __contains__(self, demand: float) -> bool:
        return float(demand) in self._index

    def row(self, demand: float) -> Optional[int]:
        """Row index of an exactly-matching demand level, or ``None``."""
        return self._index.get(float(demand))

    def costs_for(self, demand: float) -> Optional[np.ndarray]:
        """The ``(n,)`` cost row for ``demand`` (``None`` on a table miss)."""
        i = self._index.get(float(demand))
        return None if i is None else self.costs[i]

    def loads_for(self, demand: float) -> Optional[np.ndarray]:
        """The ``(n, d)`` load block for ``demand`` (``None`` on a table miss)."""
        i = self._index.get(float(demand))
        return None if i is None else self.loads[i]

    def entry(self, demand: float, config_idx: int) -> Optional[tuple]:
        """``(cost, loads)`` of one configuration, or ``None`` on a miss."""
        i = self._index.get(float(demand))
        if i is None:
            return None
        return float(self.costs[i, config_idx]), self.loads[i, config_idx]

    def gather(self, demands: Sequence[float]) -> tuple:
        """Vectorised multi-demand lookup: one gather for a whole cohort.

        Maps a ``(k,)`` demand vector onto table rows in one pass and returns
        ``(rows, miss_mask)`` — ``rows`` is the ``(k,)`` int row-index array
        (entries for missing levels are 0 and must be ignored under the mask),
        ``miss_mask`` the ``(k,)`` boolean mask of demands absent from the
        table.  The caller fans the hits into ``self.costs[rows]`` /
        ``self.loads[rows]`` fancy-indexing (one NumPy gather for the cohort)
        and routes the misses down the per-tenant solver path.  Exact float
        matching, like every other lookup here — binned streams reproduce the
        same float64 level values bit for bit.
        """
        demands = np.asarray(demands, dtype=float)
        index = self._index
        rows = np.zeros(demands.shape, dtype=np.intp)
        miss = np.zeros(demands.shape, dtype=bool)
        flat_rows = rows.ravel()
        flat_miss = miss.ravel()
        for j, value in enumerate(demands.ravel().tolist()):
            i = index.get(value)
            if i is None:
                flat_miss[j] = True
            else:
                flat_rows[j] = i
        return rows, miss
