"""Load-dispatch solver: evaluation of the operating cost ``g_t(x)``."""

from .allocation import DispatchResult, DispatchSolver, reference_dispatch

__all__ = ["DispatchResult", "DispatchSolver", "reference_dispatch"]
