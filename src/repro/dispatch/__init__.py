"""Load-dispatch solver: batched evaluation of the operating cost ``g_t(x)``."""

from .allocation import DispatchResult, DispatchSolver, DispatchStats, reference_dispatch

__all__ = ["DispatchResult", "DispatchSolver", "DispatchStats", "reference_dispatch"]
