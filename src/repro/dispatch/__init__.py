"""Load-dispatch solver: batched evaluation of the operating cost ``g_t(x)``."""

from .allocation import DispatchResult, DispatchSolver, DispatchStats, reference_dispatch
from .tables import SolutionTable

__all__ = [
    "DispatchResult",
    "DispatchSolver",
    "DispatchStats",
    "SolutionTable",
    "reference_dispatch",
]
