"""Load dispatching: evaluating the operating cost ``g_t(x)``.

For a server configuration ``x = (x_1, ..., x_d)`` and job volume ``lambda_t``,
equation (1) of the paper defines the operating cost of a time slot as

``g_t(x) = min_{z in Z} sum_j g_{t,j}(x_j, z_j)``,
``g_{t,j}(x, z) = x * f_{t,j}(lambda_t * z / x)``  (``inf`` if ``x = 0`` and ``lambda_t z > 0``),

where ``Z`` is the probability simplex over the ``d`` types.  By Lemma 2
(Jensen), splitting the volume assigned to a type equally among its active
servers is optimal, which is why the per-type cost only depends on the *total*
volume ``w_j = lambda_t z_j`` routed to the type.

Writing ``h_j(w) = x_j * f_{t,j}(w / x_j)``, evaluating ``g_t(x)`` is a separable
convex resource-allocation problem

``min sum_j h_j(w_j)   s.t.  sum_j w_j = lambda_t,  0 <= w_j <= x_j * zmax_j``.

The KKT conditions equalise marginal costs: there is a multiplier ``mu`` with
``w_j(mu) = x_j * clip((f_{t,j}')^{-1}(mu), 0, zmax_j)``.  The total allocation
``sum_j w_j(mu)`` is non-decreasing in ``mu``, so ``mu`` is found by bisection.
Because the per-family inverse marginals are available in closed form
(:mod:`repro.core.cost_functions`), the whole computation vectorises over *many
configurations at once*, which is what makes the dynamic program of Section 4
practical in pure NumPy (it needs ``g_t(x)`` for every vertex of the state grid).

A SciPy (SLSQP) reference solver is included for cross-validation in the test
suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.cost_functions import CostFunction
from ..core.instance import ProblemInstance

__all__ = ["DispatchResult", "DispatchSolver", "reference_dispatch"]

_EPS = 1e-12


@dataclass(frozen=True)
class DispatchResult:
    """Result of one dispatch computation.

    Attributes
    ----------
    cost:
        Operating cost ``g_t(x)`` (``inf`` when the configuration cannot serve
        the demand).
    loads:
        Volume ``w_j`` routed to each server type (``w_j = lambda_t * z_j``).
    feasible:
        Whether the configuration has enough capacity for the demand.
    """

    cost: float
    loads: np.ndarray
    feasible: bool

    @property
    def fractions(self) -> np.ndarray:
        """The job fractions ``z_j`` (zero vector when the demand is zero)."""
        total = float(np.sum(self.loads))
        if total <= 0:
            return np.zeros_like(self.loads)
        return self.loads / total


class DispatchSolver:
    """Evaluates ``g_t(x)`` for configurations of a fixed problem instance.

    The solver memoises single-configuration queries (the online algorithms ask
    for the same configurations repeatedly) and exposes a vectorised
    :meth:`solve_grid` used by the offline dynamic programs.

    Parameters
    ----------
    instance:
        The problem instance providing demands, capacities and cost functions.
    tol:
        Relative tolerance of the dual bisection.
    max_bisection_steps:
        Number of bisection iterations (60 gives ~1e-18 interval width, far
        below float precision of the cost).
    """

    def __init__(self, instance: ProblemInstance, tol: float = 1e-10, max_bisection_steps: int = 60):
        self.instance = instance
        self.tol = float(tol)
        self.max_bisection_steps = int(max_bisection_steps)
        self._cache: dict = {}

    # ------------------------------------------------------------------ API
    def solve(self, t: int, x: Sequence[int]) -> DispatchResult:
        """Return the optimal dispatch for configuration ``x`` at slot ``t``."""
        x_arr = np.asarray(x, dtype=int)
        if x_arr.shape != (self.instance.d,):
            raise ValueError(f"configuration must have shape ({self.instance.d},), got {x_arr.shape}")
        key = (t, tuple(int(v) for v in x_arr))
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        costs, loads = self.solve_grid(t, x_arr[None, :])
        result = DispatchResult(cost=float(costs[0]), loads=loads[0], feasible=bool(np.isfinite(costs[0])))
        self._cache[key] = result
        return result

    def operating_cost(self, t: int, x: Sequence[int]) -> float:
        """Shortcut for ``solve(t, x).cost``."""
        return self.solve(t, x).cost

    def clear_cache(self) -> None:
        """Drop memoised dispatch results (e.g. after mutating workloads in tests)."""
        self._cache.clear()

    # ----------------------------------------------------------- vectorised
    def solve_grid(self, t: int, configs: np.ndarray) -> tuple:
        """Evaluate ``g_t(x)`` for a batch of configurations.

        Parameters
        ----------
        t:
            Slot index (0-based).
        configs:
            Integer array of shape ``(n, d)``; each row is a configuration.

        Returns
        -------
        (costs, loads):
            ``costs`` has shape ``(n,)`` with ``inf`` for infeasible rows;
            ``loads`` has shape ``(n, d)`` with the optimal per-type volumes.
        """
        inst = self.instance
        configs = np.asarray(configs, dtype=float)
        if configs.ndim != 2 or configs.shape[1] != inst.d:
            raise ValueError(f"configs must have shape (n, {inst.d})")
        n, d = configs.shape
        lam = float(inst.demand[t])
        zmax = inst.zmax
        functions = inst.cost_row(t)

        caps = np.where(configs > 0, configs * zmax[None, :], 0.0)
        caps = np.where(np.isnan(caps), 0.0, caps)
        total_cap = caps.sum(axis=1)
        feasible = total_cap >= lam - 1e-9

        loads = np.zeros((n, d), dtype=float)
        costs = np.full(n, np.inf, dtype=float)

        # idle cost of every active server, independent of the allocation
        idle = np.array([f.idle_cost() for f in functions], dtype=float)

        if lam <= 0.0:
            costs = configs @ idle
            return costs, loads

        active = feasible
        if not np.any(active):
            return costs, loads

        sub_configs = configs[active]
        sub_caps = caps[active]
        w = self._allocate(lam, sub_configs, sub_caps, zmax, functions)
        loads[active] = w

        # cost = sum_j x_j f_j(w_j / x_j); idle servers of a type still pay f_j(0)
        cost_active = np.zeros(sub_configs.shape[0], dtype=float)
        for j, f in enumerate(functions):
            xj = sub_configs[:, j]
            wj = w[:, j]
            per_server_load = np.where(xj > 0, wj / np.where(xj > 0, xj, 1.0), 0.0)
            vals = np.asarray(f.value(per_server_load), dtype=float)
            cost_active += np.where(xj > 0, xj * vals, 0.0)
        costs[active] = cost_active
        return costs, loads

    # ------------------------------------------------------------- internals
    def _allocate(
        self,
        lam: float,
        configs: np.ndarray,
        caps: np.ndarray,
        zmax: np.ndarray,
        functions: Sequence[CostFunction],
    ) -> np.ndarray:
        """Water-filling by dual bisection, vectorised over configurations.

        Only called for feasible configurations and ``lam > 0``.
        """
        n, d = configs.shape
        if d == 1:
            return np.minimum(np.full((n, 1), lam), caps)

        # effective caps never need to exceed the demand itself
        eff_caps = np.minimum(caps, lam)

        def allocation(mu: np.ndarray) -> np.ndarray:
            w = np.zeros((n, d), dtype=float)
            for j, f in enumerate(functions):
                inv = np.asarray(f.inverse_derivative(mu), dtype=float)
                zj = np.clip(inv, 0.0, zmax[j] if np.isfinite(zmax[j]) else np.inf)
                wj = np.where(configs[:, j] > 0, configs[:, j] * np.minimum(zj, lam), 0.0)
                w[:, j] = np.minimum(np.where(np.isnan(wj), eff_caps[:, j], wj), eff_caps[:, j])
            return w

        mu_lo = np.full(n, -1.0)
        mu_hi = np.ones(n)
        for _ in range(200):
            tot = allocation(mu_hi).sum(axis=1)
            need = tot < lam - 1e-12
            if not np.any(need):
                break
            mu_hi = np.where(need, mu_hi * 2.0, mu_hi)
        for _ in range(self.max_bisection_steps):
            mid = 0.5 * (mu_lo + mu_hi)
            tot = allocation(mid).sum(axis=1)
            too_low = tot < lam
            mu_lo = np.where(too_low, mid, mu_lo)
            mu_hi = np.where(too_low, mu_hi, mid)

        w_lo = allocation(mu_lo)
        w_hi = allocation(mu_hi)
        sum_lo = w_lo.sum(axis=1)
        sum_hi = w_hi.sum(axis=1)
        gap = sum_hi - sum_lo
        theta = np.where(gap > _EPS, (lam - sum_lo) / np.where(gap > _EPS, gap, 1.0), 0.0)
        theta = np.clip(theta, 0.0, 1.0)
        w = w_lo + theta[:, None] * (w_hi - w_lo)

        # remove any residual drift by scaling towards the demand (within caps)
        total = w.sum(axis=1)
        deficit = lam - total
        room = eff_caps - w
        room_total = room.sum(axis=1)
        adjust = np.zeros_like(w)
        positive = (deficit > _EPS) & (room_total > _EPS)
        if np.any(positive):
            share = np.where(room_total[:, None] > _EPS, room / np.where(room_total[:, None] > _EPS, room_total[:, None], 1.0), 0.0)
            adjust = np.where(positive[:, None], share * deficit[:, None], 0.0)
        w = w + adjust
        overshoot = (w.sum(axis=1) - lam) > _EPS
        if np.any(overshoot):
            scale = lam / np.maximum(w.sum(axis=1), _EPS)
            w = np.where(overshoot[:, None], w * scale[:, None], w)
        return w


def reference_dispatch(instance: ProblemInstance, t: int, x: Sequence[int]) -> DispatchResult:
    """Solve the dispatch problem with SciPy's SLSQP (reference implementation).

    Slow but independent of the dual-bisection logic; used by the test suite to
    validate :class:`DispatchSolver` on randomly generated instances.
    """
    from scipy import optimize

    x_arr = np.asarray(x, dtype=float)
    d = instance.d
    lam = float(instance.demand[t])
    zmax = instance.zmax
    functions = instance.cost_row(t)
    caps = np.where(x_arr > 0, x_arr * zmax, 0.0)
    caps = np.where(np.isnan(caps), 0.0, caps)
    caps = np.minimum(caps, lam if lam > 0 else 0.0)

    idle = np.array([f.idle_cost() for f in functions])
    if lam <= 0:
        return DispatchResult(cost=float(x_arr @ idle), loads=np.zeros(d), feasible=True)
    if np.where(x_arr > 0, x_arr * zmax, 0.0).sum() < lam - 1e-9:
        return DispatchResult(cost=math.inf, loads=np.zeros(d), feasible=False)

    def objective(w):
        total = 0.0
        for j, f in enumerate(functions):
            if x_arr[j] > 0:
                total += x_arr[j] * float(f.value(w[j] / x_arr[j]))
        return total

    w0 = np.where(caps > 0, caps, 0.0)
    if w0.sum() > 0:
        w0 = w0 * (lam / w0.sum())
    constraints = [{"type": "eq", "fun": lambda w: np.sum(w) - lam}]
    bounds = [(0.0, float(c)) for c in caps]
    res = optimize.minimize(
        objective,
        w0,
        method="SLSQP",
        bounds=bounds,
        constraints=constraints,
        options={"maxiter": 200, "ftol": 1e-12},
    )
    w = np.clip(res.x, 0.0, caps)
    if w.sum() > 0:
        w = w * (lam / w.sum())
    return DispatchResult(cost=float(objective(w)), loads=w, feasible=True)
