"""Load dispatching: evaluating the operating cost ``g_t(x)``.

For a server configuration ``x = (x_1, ..., x_d)`` and job volume ``lambda_t``,
equation (1) of the paper defines the operating cost of a time slot as

``g_t(x) = min_{z in Z} sum_j g_{t,j}(x_j, z_j)``,
``g_{t,j}(x, z) = x * f_{t,j}(lambda_t * z / x)``  (``inf`` if ``x = 0`` and ``lambda_t z > 0``),

where ``Z`` is the probability simplex over the ``d`` types.  By Lemma 2
(Jensen), splitting the volume assigned to a type equally among its active
servers is optimal, which is why the per-type cost only depends on the *total*
volume ``w_j = lambda_t z_j`` routed to the type.

Writing ``h_j(w) = x_j * f_{t,j}(w / x_j)``, evaluating ``g_t(x)`` is a separable
convex resource-allocation problem

``min sum_j h_j(w_j)   s.t.  sum_j w_j = lambda_t,  0 <= w_j <= x_j * zmax_j``.

The KKT conditions equalise marginal costs: there is a multiplier ``mu`` with
``w_j(mu) = x_j * clip((f_{t,j}')^{-1}(mu), 0, zmax_j)``.  The total allocation
``sum_j w_j(mu)`` is non-decreasing in ``mu``, so ``mu`` is found by bisection.

Batched engine
--------------
The offline DP needs ``g_t(x)`` for every vertex of the state grid at *every*
slot, and the online algorithms re-evaluate the same grid slot after slot.
:meth:`DispatchSolver.solve_block` therefore solves the whole
``(slots x configurations)`` block at once:

* slots are **deduplicated** by their dispatch signature ``(lambda_t, f_{t,*})``
  — in the time-independent model of Section 2 this collapses ``T`` dispatch
  solves to the number of *unique* demand levels,
* unique slots sharing a cost row are solved by **one 2-D dual bisection** over
  a ``(unique_slots, n_configs)`` array, so every ``(f_{t,j}')^{-1}`` is
  evaluated once per mu-iteration for the entire block,
* the initial mu bracket comes from the **derivative bound**
  ``max_j f'_{t,j}(min(zmax_j, lambda_t))`` instead of an unconditional
  doubling loop, and because ``mu^*(lambda)`` is non-decreasing in the demand,
  sorting the unique demands lets each bisection iteration propagate bracket
  information across rows (a vectorised warm start), and
* results are **memoised** per ``(signature, configuration-set)``, which turns
  the repeated whole-grid queries of the online trackers (and Algorithm C's
  sub-slot refinement) into dictionary lookups.

A SciPy (SLSQP) reference solver is included for cross-validation in the test
suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.backend import get_backend
from ..core.cost_functions import CostFunction, ScaledCost
from ..core.instance import ProblemInstance

__all__ = ["DispatchResult", "DispatchStats", "DispatchSolver", "reference_dispatch"]

_EPS = 1e-12


@dataclass(frozen=True)
class DispatchResult:
    """Result of one dispatch computation.

    Attributes
    ----------
    cost:
        Operating cost ``g_t(x)`` (``inf`` when the configuration cannot serve
        the demand).
    loads:
        Volume ``w_j`` routed to each server type (``w_j = lambda_t * z_j``).
    feasible:
        Whether the configuration has enough capacity for the demand.
    """

    cost: float
    loads: np.ndarray
    feasible: bool

    @property
    def fractions(self) -> np.ndarray:
        """The job fractions ``z_j`` (zero vector when the demand is zero)."""
        total = float(np.sum(self.loads))
        if total <= 0:
            return np.zeros_like(self.loads)
        return self.loads / total


@dataclass
class DispatchStats:
    """Work counters of a :class:`DispatchSolver` (reset with :meth:`reset`).

    ``slot_queries`` counts every (slot, configuration-set) row requested
    through the block engine; ``unique_solves`` counts how many of those
    actually ran a fresh dual bisection.  The difference is served from the
    signature dedup / memo cache, so
    ``cache_hit_rate = 1 - unique_solves / slot_queries``.

    ``warm_hits`` / ``cold_solves`` split the unique demand rows that reached
    the dual bisection by whether a previous solve of the same
    ``(cost-row, configuration-set)`` pair seeded their bracket
    (``warm_start=True`` solvers only; the ``d == 1`` closed form and
    warm-start-off solvers count everything as cold).
    """

    block_calls: int = 0
    slot_queries: int = 0
    unique_solves: int = 0
    bisection_iterations: int = 0
    bracket_expansions: int = 0
    warm_hits: int = 0
    cold_solves: int = 0

    @property
    def cache_hits(self) -> int:
        return self.slot_queries - self.unique_solves

    @property
    def cache_hit_rate(self) -> float:
        if self.slot_queries <= 0:
            return 0.0
        return 1.0 - self.unique_solves / self.slot_queries

    def reset(self) -> None:
        self.block_calls = 0
        self.slot_queries = 0
        self.unique_solves = 0
        self.bisection_iterations = 0
        self.bracket_expansions = 0
        self.warm_hits = 0
        self.cold_solves = 0

    def snapshot(self) -> dict:
        """Plain-dict summary for benchmark harnesses and reports."""
        return {
            "block_calls": self.block_calls,
            "slot_queries": self.slot_queries,
            "unique_solves": self.unique_solves,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "bisection_iterations": self.bisection_iterations,
            "bracket_expansions": self.bracket_expansions,
            "warm_hits": self.warm_hits,
            "cold_solves": self.cold_solves,
        }

    def delta_since(self, before: dict) -> dict:
        """Work counters accumulated since an earlier :meth:`snapshot`.

        Solvers are shared across many runs (the sweep engine runs every
        algorithm of a plan through one solver per instance), so a raw snapshot
        taken after a run reports *cumulative* totals.  Per-run reporting must
        therefore difference two snapshots; the cache-hit rate is recomputed
        from the deltas rather than copied.
        """
        block_calls = self.block_calls - int(before.get("block_calls", 0))
        slot_queries = self.slot_queries - int(before.get("slot_queries", 0))
        unique_solves = self.unique_solves - int(before.get("unique_solves", 0))
        cache_hits = slot_queries - unique_solves
        rate = 0.0 if slot_queries <= 0 else 1.0 - unique_solves / slot_queries
        return {
            "block_calls": block_calls,
            "slot_queries": slot_queries,
            "unique_solves": unique_solves,
            "cache_hits": cache_hits,
            "cache_hit_rate": round(rate, 4),
            "bisection_iterations": self.bisection_iterations - int(before.get("bisection_iterations", 0)),
            "bracket_expansions": self.bracket_expansions - int(before.get("bracket_expansions", 0)),
            "warm_hits": self.warm_hits - int(before.get("warm_hits", 0)),
            "cold_solves": self.cold_solves - int(before.get("cold_solves", 0)),
        }


class DispatchSolver:
    """Evaluates ``g_t(x)`` for configurations of a fixed problem instance.

    The solver memoises single-configuration queries (the online algorithms ask
    for the same configurations repeatedly), deduplicates whole-grid queries by
    dispatch signature, and exposes the batched :meth:`solve_block` /
    :meth:`solve_grid` used by the offline dynamic programs.

    Parameters
    ----------
    instance:
        The problem instance providing demands, capacities and cost functions.
    tol:
        Relative tolerance of the dual bisection (the bisection stops once the
        bracket width falls below ``tol`` times the initial bracket scale).
    max_bisection_steps:
        Hard cap on bisection iterations (60 gives ~1e-18 interval width, far
        below float precision of the cost).
    warm_start:
        When ``True``, the solver keeps the final dual brackets of every
        ``(cost-row, configuration-set)`` solve, keyed by demand, and seeds the
        next solve's bracket from the nearest stored demand neighbours (the
        cross-demand propagation *inside* :meth:`solve_block` is the template:
        the optimal multiplier is non-decreasing in the demand, so a lower
        neighbour's lower bracket and an upper neighbour's upper bracket stay
        valid).  Seeds are validated before use — a lower seed whose allocation
        already covers the demand is dropped, and the bracket-expansion safety
        net repairs an upper seed — so results match the cold path to solver
        tolerance, but converged brackets differ at the ~1e-12 level, which can
        flip exact argmin ties downstream.  The serve layer therefore keeps
        this **off by default** (its replay gates demand bit-identical
        schedules across checkpoint/restore into a cold cache) and treats it as
        an opt-in for long sweeps.
    """

    #: Warm-state growth bounds: per-key demand rows and total keys.  Binned
    #: demand streams stay far below both; the caps only guard pathological
    #: continuous-demand workloads from pinning memory.
    _WARM_MAX_ROWS = 4096
    _WARM_MAX_KEYS = 64

    def __init__(
        self,
        instance: ProblemInstance,
        tol: float = 1e-10,
        max_bisection_steps: int = 60,
        warm_start: bool = False,
    ):
        self.instance = instance
        self.tol = float(tol)
        self.max_bisection_steps = int(max_bisection_steps)
        self.warm_start = bool(warm_start)
        self.stats = DispatchStats()
        #: Dual multipliers of the most recent `_solve_rows` call, shaped
        #: ``(demand levels, n configs)`` with NaN for zero-demand rows,
        #: inactive columns and the ``d == 1`` closed form — test hook for the
        #: warm vs cold equivalence suite.
        self.last_duals: Optional[np.ndarray] = None
        self._cache: dict = {}
        self._block_cache: dict = {}
        self._sig_cache: dict = {}
        self._sig_functions: dict = {}
        self._configs_id_cache: dict = {}
        #: ``(row_key, configs_key) -> (sorted demands, mu_lo, mu_hi)`` with the
        #: bracket arrays full-width over all n columns (sentinels ``-1`` /
        #: ``+inf`` in columns inactive at store time, neutral under the
        #: max/min seeding).
        self._warm: dict = {}

    # ------------------------------------------------------------------ API
    def solve(self, t: int, x: Sequence[int]) -> DispatchResult:
        """Return the optimal dispatch for configuration ``x`` at slot ``t``."""
        x_arr = np.asarray(x, dtype=int)
        if x_arr.shape != (self.instance.d,):
            raise ValueError(f"configuration must have shape ({self.instance.d},), got {x_arr.shape}")
        key = (self._slot_signature(t), tuple(int(v) for v in x_arr))
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        costs, loads = self.solve_grid(t, x_arr[None, :])
        result = DispatchResult(cost=float(costs[0]), loads=loads[0], feasible=bool(np.isfinite(costs[0])))
        self._cache[key] = result
        return result

    def operating_cost(self, t: int, x: Sequence[int]) -> float:
        """Shortcut for ``solve(t, x).cost``."""
        return self.solve(t, x).cost

    def clear_cache(self) -> None:
        """Drop memoised dispatch results (e.g. after mutating workloads in tests)."""
        self._cache.clear()
        self._block_cache.clear()
        self._sig_cache.clear()
        self._sig_functions.clear()
        self._configs_id_cache.clear()
        self._warm.clear()

    # ----------------------------------------------------------- vectorised
    def solve_grid(self, t: int, configs: np.ndarray) -> tuple:
        """Evaluate ``g_t(x)`` for a batch of configurations.

        Parameters
        ----------
        t:
            Slot index (0-based).
        configs:
            Array of shape ``(n, d)``; each row is a configuration (fractional
            rows are allowed — the fractional baselines use them).

        Returns
        -------
        (costs, loads):
            ``costs`` has shape ``(n,)`` with ``inf`` for infeasible rows;
            ``loads`` has shape ``(n, d)`` with the optimal per-type volumes.
        """
        costs, loads = self.solve_block([t], configs)
        return costs[0], loads[0]

    def solve_block(self, ts: Sequence[int], configs: np.ndarray, memoise: bool = True) -> tuple:
        """Evaluate ``g_t(x)`` for every slot in ``ts`` times every row of ``configs``.

        This is the batched engine behind all solvers: slots are deduplicated
        by dispatch signature, unique slots sharing a cost row are solved in
        one vectorised 2-D dual bisection, and solutions are memoised per
        ``(signature, configuration-set)``.

        Parameters
        ----------
        ts:
            Slot indices (0-based, repeats allowed).
        configs:
            Array of shape ``(n, d)`` shared by all slots.
        memoise:
            When ``False``, previously cached results are still *read* but no
            new ``(signature, configuration-set)`` entries are written.  The
            streaming DP passes ``False``: on long horizons with per-slot
            demands the memo would hold one cost row *and* one load block per
            slot — the very ``O(T * |M|)`` footprint the streaming pass
            removes.

        Returns
        -------
        (costs, loads):
            ``costs`` has shape ``(len(ts), n)``; ``loads`` has shape
            ``(len(ts), n, d)``.  Infeasible entries carry ``inf`` cost and
            zero loads.  The returned arrays are read-only (they may be shared
            with the internal memo cache).
        """
        inst = self.instance
        configs = np.asarray(configs)
        if configs.ndim != 2 or configs.shape[1] != inst.d:
            raise ValueError(f"configs must have shape (n, {inst.d})")
        ts = [int(t) for t in ts]
        n, d = configs.shape
        S = len(ts)
        self.stats.block_calls += 1
        self.stats.slot_queries += S

        out_costs = np.empty((S, n), dtype=float)
        out_loads = np.zeros((S, n, d), dtype=float)
        if S == 0:
            return out_costs, out_loads
        configs_key = self._configs_key(configs)
        float_configs: Optional[np.ndarray] = None

        # --- dedup: signature -> rows of the output block that share it.  A
        # slot's signature is its *base* cost row; its scale (price factor,
        # Algorithm C's 1/n_t sub-slot scaling) only multiplies the cost, so
        # slots differing by scale alone share one dual-bisection solve.
        pending: dict = {}
        for i, t in enumerate(ts):
            sig, scale = self._slot_signature(t)
            cached = self._block_cache.get((sig, scale, configs_key))
            if cached is not None:
                out_costs[i], out_loads[i] = cached
                continue
            entry = pending.get(sig)
            if entry is None:
                pending[sig] = [(i, scale)]
            else:
                entry.append((i, scale))

        # --- group unique signatures by cost row and solve each group at once
        groups: dict = {}
        for sig, rows in pending.items():
            groups.setdefault(sig[1], []).append((sig, rows))
        for row_key, entries in groups.items():
            entries.sort(key=lambda e: e[0][0])  # ascending demand
            lams = np.array([e[0][0] for e in entries], dtype=float)
            functions = self._sig_functions[row_key]
            if float_configs is None:
                float_configs = np.ascontiguousarray(configs, dtype=float)
            warm_key = (row_key, configs_key) if self.warm_start else None
            costs_u, loads_u = self._solve_rows(lams, float_configs, functions, warm_key)
            costs_u.setflags(write=False)
            loads_u.setflags(write=False)
            self.stats.unique_solves += len(entries)
            for k, (sig, rows) in enumerate(entries):
                loads_k = loads_u[k]
                scaled_costs: dict = {1.0: costs_u[k]}
                for i, scale in rows:
                    row_costs = scaled_costs.get(scale)
                    if row_costs is None:
                        # the optimal allocation is scale-invariant; only the
                        # cost is multiplied (inf stays inf for scale > 0)
                        row_costs = costs_u[k] * scale
                        row_costs.setflags(write=False)
                        scaled_costs[scale] = row_costs
                    if memoise:
                        self._block_cache[(sig, scale, configs_key)] = (row_costs, loads_k)
                    out_costs[i] = row_costs
                    out_loads[i] = loads_k

        out_costs.setflags(write=False)
        out_loads.setflags(write=False)
        return out_costs, out_loads

    # ------------------------------------------------------------- internals
    def _configs_key(self, configs: np.ndarray):
        """Hashable content key of a configuration set.

        Read-only arrays (the cached :meth:`StateGrid.configs` enumerations the
        trackers re-query every slot) are keyed by identity after the first
        serialisation, so warm lookups skip the ``tobytes`` copy.  The cached
        entry keeps a strong reference to the array, which pins its ``id``.
        """
        if not configs.flags.writeable:
            entry = self._configs_id_cache.get(id(configs))
            if entry is not None and entry[0] is configs:
                return entry[1]
            key = (configs.shape, configs.dtype.str, configs.tobytes())
            self._configs_id_cache[id(configs)] = (configs, key)
            return key
        return (configs.shape, configs.dtype.str, configs.tobytes())

    def _slot_signature(self, t: int):
        """Dispatch identity of slot ``t``: ``((lambda_t, base cost row), scale)``.

        Two slots with equal signatures have identical ``g_t`` up to the scalar
        ``scale`` — the engine solves one of them and reuses the result.  Rows
        in which every type carries the *same* positive ``ScaledCost`` factor
        (electricity-price profiles, Algorithm C's ``1/n_t`` sub-slot split)
        are normalised to their base row: scaling the whole objective by a
        positive constant does not change the optimal allocation, so the base
        solve is shared and only the cost is multiplied by ``scale``.  Exotic
        unhashable cost functions degrade gracefully to a per-slot signature
        (no cross-slot sharing).
        """
        cached = self._sig_cache.get(t)
        if cached is None:
            lam = float(self.instance.demand[t])
            row = self.instance.cost_row(t)
            scale = 1.0
            while row and all(type(f) is ScaledCost for f in row):
                factors = {f.factor for f in row}
                if len(factors) != 1:
                    break
                factor = factors.pop()
                if not factor > 0.0:
                    break
                scale *= factor
                row = tuple(f.base for f in row)
            try:
                hash(row)
            except TypeError:
                row, scale = ("slot", t), 1.0
            sig = (lam, row)
            self._sig_functions.setdefault(row, self.instance.cost_row(t) if row == ("slot", t) else row)
            cached = (sig, scale)
            self._sig_cache[t] = cached
        return cached

    def _solve_rows(
        self,
        lams: np.ndarray,
        configs: np.ndarray,
        functions: Sequence[CostFunction],
        warm_key=None,
    ) -> tuple:
        """Solve the dispatch problem for ``u`` demand levels x ``n`` configurations.

        ``lams`` must be sorted ascending (the caller guarantees it); the sort
        order is what makes the cross-row bracket propagation of
        :meth:`_allocate_rows` valid.  ``warm_key`` (warm-start solvers only)
        names the ``(cost-row, configuration-set)`` bracket store this solve
        seeds from and contributes back to.
        """
        u = len(lams)
        n, d = configs.shape
        zmax = self.instance.zmax

        caps = np.where(configs > 0, configs * zmax[None, :], 0.0)
        caps = np.where(np.isnan(caps), 0.0, caps)
        total_cap = caps.sum(axis=1)

        idle = np.array([f.idle_cost() for f in functions], dtype=float)
        costs = np.full((u, n), np.inf, dtype=float)
        loads = np.zeros((u, n, d), dtype=float)
        self.last_duals = np.full((u, n), np.nan)

        zero = lams <= 0.0
        if np.any(zero):
            costs[zero] = (configs @ idle)[None, :]
        pos = ~zero
        if not np.any(pos):
            return costs, loads

        lam_p = lams[pos]
        feasible = total_cap[None, :] >= lam_p[:, None] - 1e-9  # (p, n)
        # columns that no requested demand level can use are skipped entirely
        active_cols = feasible.any(axis=0)
        if not np.any(active_cols):
            return costs, loads
        sub_configs = configs[active_cols]
        sub_caps = caps[active_cols]
        feas_sub = feasible[:, active_cols]

        warm_state = None
        if warm_key is not None and d > 1:
            store = self._warm.get(warm_key)
            if store is not None:
                w_lams, w_lo, w_hi = store
                warm_state = (w_lams, w_lo[:, active_cols], w_hi[:, active_cols])

        w, mu_lo, mu_hi = self._allocate_rows(
            lam_p, sub_configs, sub_caps, zmax, functions, feas_sub, warm_state
        )
        p = len(lam_p)
        if warm_state is not None:
            self.stats.warm_hits += p
        else:
            self.stats.cold_solves += p
        if mu_lo is not None:
            duals = np.full((p, n), np.nan)
            duals[:, active_cols] = 0.5 * (mu_lo + mu_hi)
            self.last_duals[pos] = duals
            if warm_key is not None:
                self._store_warm(warm_key, lam_p, active_cols, mu_lo, mu_hi, n)

        # cost = sum_j x_j f_j(w_j / x_j); idle servers of a type still pay f_j(0)
        cost_sub = np.zeros((len(lam_p), sub_configs.shape[0]), dtype=float)
        for j, f in enumerate(functions):
            xj = sub_configs[:, j]
            on = xj > 0
            if not np.any(on):
                continue
            per_server = w[:, on, j] / xj[on][None, :]
            vals = np.asarray(f.value(per_server), dtype=float)
            cost_sub[:, on] += xj[on][None, :] * vals

        pos_idx = np.flatnonzero(pos)
        col_idx = np.flatnonzero(active_cols)
        costs[np.ix_(pos_idx, col_idx)] = np.where(feas_sub, cost_sub, np.inf)
        loads[np.ix_(pos_idx, col_idx)] = np.where(feas_sub[:, :, None], w, 0.0)
        return costs, loads

    def _allocate_rows(
        self,
        lams: np.ndarray,
        configs: np.ndarray,
        caps: np.ndarray,
        zmax: np.ndarray,
        functions: Sequence[CostFunction],
        feasible: np.ndarray,
        warm_state=None,
    ) -> tuple:
        """Water-filling by a 2-D dual bisection over (demand levels x configs).

        ``lams`` is sorted ascending.  Bracket initialisation uses the
        derivative bound ``max_j f'_j(min(zmax_j, lambda))``: at that multiplier
        every active type runs at its effective capacity, so the total
        allocation covers any feasible demand and no doubling search is needed.
        Because the optimal multiplier ``mu^*`` is non-decreasing in the
        demand, every iteration additionally propagates lower brackets to
        larger demands and upper brackets to smaller demands
        (``np.maximum.accumulate`` / reversed ``np.minimum.accumulate``) — the
        vectorised analogue of warm-starting each demand level's bracket from
        its neighbour's solution.

        ``warm_state`` extends that propagation *across* solves: it holds the
        stored ``(demands, mu_lo, mu_hi)`` of earlier solves over the same cost
        row and configuration set (already sliced to this solve's active
        columns), and each row seeds its bracket from its nearest stored
        neighbours before the expansion/bisection loops run.  The bisection and
        midpoint/propagation steps are routed through the active
        :mod:`repro.core.backend` kernels into preallocated buffers.

        Returns ``(w, mu_lo, mu_hi)`` — the final dual brackets, or ``None``s
        for the ``d == 1`` closed form.
        """
        p = len(lams)
        n, d = configs.shape
        if d == 1:
            return np.minimum(lams[:, None, None], caps[None, :, :]), None, None

        eff_caps = np.minimum(caps[None, :, :], lams[:, None, None])  # (p, n, d)
        lam_col = lams[:, None]

        def alloc(mu: np.ndarray, want_loads: bool):
            """Allocation at multiplier ``mu`` — totals only unless ``want_loads``."""
            tot = np.zeros_like(mu)
            w = np.empty((p, n, d), dtype=float) if want_loads else None
            for j, f in enumerate(functions):
                xj = configs[:, j]
                inv = np.asarray(f.inverse_derivative(mu), dtype=float)
                hi_j = zmax[j] if np.isfinite(zmax[j]) else np.inf
                zj = np.clip(inv, 0.0, hi_j)
                wj = xj[None, :] * np.minimum(zj, lam_col)
                cap_j = eff_caps[:, :, j]
                wj = np.minimum(np.where(np.isnan(wj), cap_j, wj), cap_j)
                tot += wj
                if want_loads:
                    w[:, :, j] = wj
            return (tot, w) if want_loads else tot

        # ---- initial bracket from the derivative bound (no doubling search)
        hi0 = np.zeros(p, dtype=float)
        for j, f in enumerate(functions):
            z_at = np.minimum(zmax[j], lams) if np.isfinite(zmax[j]) else lams
            dj = np.asarray(f.derivative(z_at), dtype=float)
            dj = np.where(np.isfinite(dj), dj, 0.0)
            np.maximum(hi0, dj, out=hi0)
        np.maximum.accumulate(hi0, out=hi0)  # monotone in the (sorted) demand
        mu_lo = np.full((p, n), -1.0)
        mu_hi = np.tile(hi0[:, None], (1, n))

        if warm_state is not None:
            w_lams, w_lo_s, w_hi_s = warm_state
            if len(w_lams):
                # lower neighbour (largest stored demand <= this row's demand):
                # its lower bracket still under-allocates here, so max() in
                pos_lo = np.searchsorted(w_lams, lams, side="right") - 1
                seed_lo = w_lo_s[np.maximum(pos_lo, 0)].copy()
                seed_lo[pos_lo < 0] = -1.0
                np.maximum(mu_lo, seed_lo, out=mu_lo)
                # upper neighbour (smallest stored demand >= this row's demand)
                pos_hi = np.searchsorted(w_lams, lams, side="left")
                seed_hi = w_hi_s[np.minimum(pos_hi, len(w_lams) - 1)].copy()
                seed_hi[pos_hi >= len(w_lams)] = np.inf
                np.minimum(mu_hi, seed_hi, out=mu_hi)
                # validate lower seeds: a seed whose allocation already covers
                # the demand would trap the bisection above mu*; drop it (the
                # upper seeds are repaired by the expansion loop below)
                if np.any(mu_lo > -1.0):
                    tot_lo = alloc(mu_lo, want_loads=False)
                    np.copyto(mu_lo, -1.0, where=tot_lo >= lam_col)

        # safety net for cost functions whose reported derivative is inexact
        # (finite-difference CallableCost): expand until every feasible row is
        # covered, breaking out immediately in the regular case.  Also repairs
        # any warm-seeded upper bracket that no longer covers its demand.
        for _ in range(64):
            tot = alloc(mu_hi, want_loads=False)
            need = (tot < lam_col - 1e-12) & feasible
            if not np.any(need):
                break
            self.stats.bracket_expansions += 1
            mu_hi = np.where(need, np.maximum(mu_hi, 0.5) * 2.0, mu_hi)

        backend = get_backend()
        mid = np.empty_like(mu_lo)
        mask = np.empty(mu_lo.shape, dtype=bool)
        width_tol = self.tol * max(1.0, float(hi0[-1]) if p else 1.0)
        propagate = p > 1
        for _ in range(self.max_bisection_steps):
            if propagate:
                # cross-row warm start: valid because mu^* is monotone in lambda
                backend.propagate_brackets(mu_lo, mu_hi)
            if float(np.max(mu_hi - mu_lo)) <= width_tol:
                break
            self.stats.bisection_iterations += 1
            backend.midpoint(mu_lo, mu_hi, mid)
            tot = alloc(mid, want_loads=False)
            backend.bisect_step(mu_lo, mu_hi, mid, tot, lam_col, mask)

        sum_lo, w_lo = alloc(mu_lo, want_loads=True)
        sum_hi, w_hi = alloc(mu_hi, want_loads=True)
        gap = sum_hi - sum_lo
        theta = np.where(gap > _EPS, (lam_col - sum_lo) / np.where(gap > _EPS, gap, 1.0), 0.0)
        theta = np.clip(theta, 0.0, 1.0)
        w = w_lo + theta[:, :, None] * (w_hi - w_lo)

        # remove any residual drift by scaling towards the demand (within caps)
        total = w.sum(axis=2)
        deficit = lam_col - total
        room = eff_caps - w
        room_total = room.sum(axis=2)
        positive = (deficit > _EPS) & (room_total > _EPS)
        if np.any(positive):
            safe_room = np.where(room_total[:, :, None] > _EPS, room_total[:, :, None], 1.0)
            share = np.where(room_total[:, :, None] > _EPS, room / safe_room, 0.0)
            w = w + np.where(positive[:, :, None], share * deficit[:, :, None], 0.0)
        overshoot = (w.sum(axis=2) - lam_col) > _EPS
        if np.any(overshoot):
            scale = lam_col / np.maximum(w.sum(axis=2), _EPS)
            w = np.where(overshoot[:, :, None], w * scale[:, :, None], w)
        return w, mu_lo, mu_hi

    def _store_warm(
        self,
        warm_key,
        lams: np.ndarray,
        active_cols: np.ndarray,
        mu_lo: np.ndarray,
        mu_hi: np.ndarray,
        n: int,
    ) -> None:
        """Merge a solve's final brackets into the per-key warm store.

        Rows are widened back to all ``n`` columns with neutral sentinels so a
        later solve with a different active-column set can still slice and
        seed.  New rows win over stored rows at equal demand (they carry the
        freshest propagated brackets); the store is kept demand-sorted for the
        ``searchsorted`` neighbour lookup.
        """
        full_lo = np.full((len(lams), n), -1.0)
        full_hi = np.full((len(lams), n), np.inf)
        full_lo[:, active_cols] = mu_lo
        full_hi[:, active_cols] = mu_hi
        store = self._warm.get(warm_key)
        if store is not None:
            w_lams, w_lo, w_hi = store
            keep = ~np.isin(w_lams, lams)
            merged = np.concatenate([w_lams[keep], lams])
            if len(merged) <= self._WARM_MAX_ROWS:
                order = np.argsort(merged, kind="stable")
                self._warm[warm_key] = (
                    merged[order],
                    np.concatenate([w_lo[keep], full_lo], axis=0)[order],
                    np.concatenate([w_hi[keep], full_hi], axis=0)[order],
                )
                return
            # overflow: restart the store from this solve's rows alone
        elif len(self._warm) >= self._WARM_MAX_KEYS:
            self._warm.clear()
        self._warm[warm_key] = (lams.copy(), full_lo, full_hi)


def reference_dispatch(instance: ProblemInstance, t: int, x: Sequence[int]) -> DispatchResult:
    """Solve the dispatch problem with SciPy's SLSQP (reference implementation).

    Slow but independent of the dual-bisection logic; used by the test suite to
    validate :class:`DispatchSolver` on randomly generated instances.
    """
    from scipy import optimize

    x_arr = np.asarray(x, dtype=float)
    d = instance.d
    lam = float(instance.demand[t])
    zmax = instance.zmax
    functions = instance.cost_row(t)
    caps = np.where(x_arr > 0, x_arr * zmax, 0.0)
    caps = np.where(np.isnan(caps), 0.0, caps)
    caps = np.minimum(caps, lam if lam > 0 else 0.0)

    idle = np.array([f.idle_cost() for f in functions])
    if lam <= 0:
        return DispatchResult(cost=float(x_arr @ idle), loads=np.zeros(d), feasible=True)
    if np.where(x_arr > 0, x_arr * zmax, 0.0).sum() < lam - 1e-9:
        return DispatchResult(cost=math.inf, loads=np.zeros(d), feasible=False)

    def objective(w):
        total = 0.0
        for j, f in enumerate(functions):
            if x_arr[j] > 0:
                total += x_arr[j] * float(f.value(w[j] / x_arr[j]))
        return total

    w0 = np.where(caps > 0, caps, 0.0)
    if w0.sum() > 0:
        w0 = w0 * (lam / w0.sum())
    constraints = [{"type": "eq", "fun": lambda w: np.sum(w) - lam}]
    bounds = [(0.0, float(c)) for c in caps]
    res = optimize.minimize(
        objective,
        w0,
        method="SLSQP",
        bounds=bounds,
        constraints=constraints,
        options={"maxiter": 200, "ftol": 1e-12},
    )
    w = np.clip(res.x, 0.0, caps)
    if w.sum() > 0:
        w = w * (lam / w.sum())
    return DispatchResult(cost=float(objective(w)), loads=w, feasible=True)
