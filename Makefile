PYTHON ?= python
export PYTHONPATH := $(CURDIR)/src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-smoke

test:
	$(PYTHON) -m pytest -x -q

# <30s regression harness: solves three pinned instances and asserts the DP
# still returns seed-identical optimal costs (guards the batched dispatch
# engine against accuracy drift).
bench-smoke:
	$(PYTHON) -m repro bench --smoke

# full benchmark harness (regenerates the paper artifacts + BENCH_*.json)
bench:
	cd benchmarks && $(PYTHON) -m pytest bench_*.py -q --benchmark-only
