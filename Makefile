PYTHON ?= python
export PYTHONPATH := $(CURDIR)/src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-smoke bench-sweep bench-scale bench-serve bench-fabric bench-latency-smoke bench-batch-smoke perf-regress scenarios-smoke serve-smoke chaos-smoke fabric-smoke watch-smoke

test:
	$(PYTHON) -m pytest -x -q

# <60s regression harness: solves three pinned instances and asserts the DP
# still returns seed-identical optimal costs (guards the batched dispatch
# engine against accuracy drift), runs the sweep-engine gate, and gates the
# streaming DP (checkpointed backtracking == all-tables at 1e-9) on the quick
# scale instances.
bench-smoke: perf-regress
	$(PYTHON) -m repro bench --smoke
	$(PYTHON) -m repro bench --scale

# Shared-context sweep engine over the combined THM8+13+15+22 workload;
# writes benchmarks/output/BENCH_sweep.json (costs, ratios, wall times).
bench-sweep:
	$(PYTHON) -m repro bench --sweep --json benchmarks/output/BENCH_sweep.json

# Streaming-DP scale suite at the headline sizes (T up to 50000, d=4 fleets
# with m_j up to 10^4 on geometric grids); gates streaming == all-tables at
# 1e-9 and writes benchmarks/output/BENCH_scale.json (wall + peak memory).
bench-scale:
	$(PYTHON) -m repro bench --scale --full --json benchmarks/output/BENCH_scale.json

# Performance-regression gate: re-runs the combined workload and compares
# every cost field against the pinned PR-1 reference (exact to 1e-6), then
# re-runs the pinned serve workload cold / warm-started / prewarmed and
# compares every hot-path work counter (unique solves, tensor hits, warm
# hits, table gathers, ...) against its pinned value exactly.  Wall times are
# advisory-only — machines differ — and the gate does not rewrite the
# committed BENCH_sweep.json (use `make bench-sweep` to refresh it).
perf-regress:
	$(PYTHON) -m repro bench --sweep
	$(PYTHON) -m repro bench --counters

# Microsecond-tick latency gate: repeated fresh sessions over one prewarmed
# shared cache; the p99 of the per-tick floor (elementwise minimum across
# repeats — cancels additive OS scheduler noise, see PERFORMANCE.md) must
# beat 50us x BUDGET_SCALE, with every repeat's schedule bit-identical to the
# cold path and the stream cost pinned.  CI runs this with a generous
# BUDGET_SCALE because shared runners are noisy; the committed
# BENCH_serve.json "latency" section records a scale-1.0 local run.
BUDGET_SCALE ?= 1.0
bench-latency-smoke:
	$(PYTHON) -m repro serve latency --budget-us 50 --budget-scale $(BUDGET_SCALE)

# Fleet-batched tick gate: a 64-tenant mixed-family, mixed-algorithm fleet
# (with chaos tenants and a mid-stream checkpoint/restore) run through the
# BatchedServeEngine must reproduce the sequential engine's schedules
# bit-identically, exercise both the vectorised and fallback paths, and keep
# the batched per-tenant p99 within budget (cold cohort-table installs
# included, hence the millisecond default — the scale sweep gates the
# microsecond steady state).
bench-batch-smoke:
	$(PYTHON) -m repro serve batch --budget-scale $(BUDGET_SCALE)

# Observability gate: a short traced replay writes per-tick telemetry, a
# Chrome trace and the summarise_sessions payload; `repro serve watch` must
# then reproduce that summary from the telemetry file alone, equality-exact
# (--expect diffs key by key and exits non-zero on any deviation).  The
# artifacts are removed first because telemetry appends.
WATCH_DIR := benchmarks/output/watch-smoke
watch-smoke:
	rm -rf $(WATCH_DIR)
	$(PYTHON) -m repro serve replay --scenario diurnal-cpu-gpu --param T=64 \
		--telemetry $(WATCH_DIR)/telemetry.jsonl \
		--trace $(WATCH_DIR)/trace.json \
		--json $(WATCH_DIR)/replay.json
	$(PYTHON) -m repro serve watch $(WATCH_DIR)/telemetry.jsonl --once \
		--json - --expect $(WATCH_DIR)/replay.json

# Scenario-registry gate: build every registered scenario family at a tiny
# size and run one online algorithm through each (validates the declarative
# layer end to end: spec -> registry -> lazy materialisation -> engine).
scenarios-smoke:
	$(PYTHON) -m repro scenarios smoke

# Serve-layer gate: every registered scenario family replayed tick by tick
# through a ControllerSession — including a mid-stream checkpoint/restore
# round-trip serialised through JSON — must reproduce the batch run_online
# schedule exactly and its total cost to 1e-9.
serve-smoke:
	$(PYTHON) -m repro serve smoke

# Chaos gate: every chaos-* family plus targeted single-kind fault injections
# replayed under an injected event plan in shed mode — streams must complete
# without raising, account SLA violations in the telemetry, and be
# bit-identical (schedules + counters) across a checkpoint/restore round-trip.
chaos-smoke:
	$(PYTHON) -m repro serve chaos

# Fabric gate: a small sharded fabric (supervised worker processes) with one
# injected worker SIGKILL mid-stream — including a case where the kill lands
# inside an open chaos capacity-drop window with Algorithm B power-up records
# live — must recover every tenant from its rotated checkpoints with
# bit-identical schedules, costs within 1e-9, and exact SLA counters.
fabric-smoke:
	$(PYTHON) -m repro serve fabric --smoke

# Multi-tenant serving benchmark: latency percentiles + tenants/sec for
# 1/8/64 concurrent sessions, shared vs isolated caches; gates cost equality
# and real work deduplication, writes benchmarks/output/BENCH_serve.json.
bench-serve:
	$(PYTHON) -m repro serve bench --json benchmarks/output/BENCH_serve.json

# Fabric benchmark: healthy-path p99 tick latency across worker processes +
# crash-to-recovered latency under an injected SIGKILL (gated on bit-identical
# recovery); merges a "fabric" section into benchmarks/output/BENCH_serve.json.
bench-fabric:
	$(PYTHON) -m repro serve fabric --bench --json benchmarks/output/BENCH_serve.json

# full benchmark harness (regenerates the paper artifacts + BENCH_*.json)
bench:
	cd benchmarks && $(PYTHON) -m pytest bench_*.py -q --benchmark-only
